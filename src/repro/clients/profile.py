"""Client profiles: release-dated TLS configurations.

A :class:`ClientRelease` is one concrete TLS configuration of one piece
of software — the granularity at which fingerprints exist (§4).  A
:class:`ClientFamily` is the ordered release history of one program or
library, together with an :class:`AdoptionModel` describing how quickly
its user base moves to new releases (and how heavy the laggard tail is —
the mechanism behind the paper's long-tail findings in §4.1 and §7.2).
"""

from __future__ import annotations

import datetime as _dt
import math
import random
from dataclasses import dataclass, field, replace

from repro.tls.ciphers import REGISTRY
from repro.tls.extensions import Extension, ExtensionType
from repro.tls.grease import inject_grease
from repro.tls.messages import ClientHello
from repro.tls.versions import TLS10, TLS12

# Fingerprint categories, Table 2 taxonomy.
CATEGORY_LIBRARIES = "Libraries"
CATEGORY_BROWSERS = "Browsers"
CATEGORY_OS_TOOLS = "OS Tools and Services"
CATEGORY_MOBILE_APPS = "Mobile apps"
CATEGORY_DEV_TOOLS = "Dev. tools"
CATEGORY_AV = "AV"
CATEGORY_CLOUD = "Cloud Storage"
CATEGORY_EMAIL = "Email"
CATEGORY_MALWARE = "Malware & PUP"

ALL_CATEGORIES = (
    CATEGORY_LIBRARIES,
    CATEGORY_BROWSERS,
    CATEGORY_OS_TOOLS,
    CATEGORY_MOBILE_APPS,
    CATEGORY_DEV_TOOLS,
    CATEGORY_AV,
    CATEGORY_CLOUD,
    CATEGORY_EMAIL,
    CATEGORY_MALWARE,
)


@dataclass(frozen=True)
class ClientRelease:
    """One release of one TLS client: its complete hello configuration.

    Attributes:
        family: Program / library name, e.g. ``"Chrome"``.
        version: Version label, e.g. ``"29"``.
        released: Release date.
        category: Table 2 category the client belongs to.
        max_version: Highest classic protocol version offered
            (``legacy_version`` of the Client Hello).
        cipher_suites: Offered suites, preference order, wire values
            (may include SCSVs; GREASE is injected separately).
        extensions: Extension types in wire order.
        supported_groups: Named groups in wire order (empty = none sent).
        ec_point_formats: EC point formats (empty = extension not sent).
        supported_versions: TLS 1.3 ``supported_versions`` list (empty =
            extension not sent); may contain draft values.
        tls13_fraction: Fraction of this release's population with TLS 1.3
            enabled (staged rollouts, §6.4).  1.0 = always send
            ``supported_versions``.
        grease: Inject GREASE values Chrome-style.
        library: TLS library implementing the stack (collision rule §4:
            a software/library fingerprint collision resolves to the
            library).
        tolerates_unoffered_suite: Proceeds even if the server picked a
            suite that was never offered (the Interwise behaviour, §5.5).
        weight: Relative traffic weight within the family (most releases
            are 1.0; used for odd sub-populations).
    """

    family: str
    version: str
    released: _dt.date
    category: str = CATEGORY_BROWSERS
    max_version: int = TLS10.wire
    cipher_suites: tuple[int, ...] = ()
    extensions: tuple[int, ...] = ()
    supported_groups: tuple[int, ...] = ()
    ec_point_formats: tuple[int, ...] = ()
    supported_versions: tuple[int, ...] = ()
    tls13_fraction: float = 1.0
    # Staged rollout schedule: (date, fraction) steps.  TLS 1.3 was
    # flipped on for existing installs via server-side feature flags
    # (§6.4: "enabled by new versions of Chrome and Firefox for a subset
    # of users"), so the fraction is a function of the calendar, not
    # only of the release.  Overrides tls13_fraction when non-empty.
    tls13_schedule: tuple[tuple[_dt.date, float], ...] = ()
    grease: bool = False
    library: str | None = None
    tolerates_unoffered_suite: bool = False
    weight: float = 1.0
    ssl3_fallback: bool = False
    rc4_policy: str = "default"  # "default" | "fallback_only" | "whitelist_only" | "removed"
    shuffle_suites: bool = False  # unstable cipher order (§4.1's one-day fingerprints)
    in_database: bool = True  # False: traffic we observe but cannot label

    def __post_init__(self) -> None:
        unknown = [
            c
            for c in self.cipher_suites
            if c not in REGISTRY
        ]
        if unknown:
            raise ValueError(
                f"{self.family} {self.version}: unregistered suites "
                + ", ".join(f"{c:#06x}" for c in unknown)
            )
        if len(set(self.cipher_suites)) != len(self.cipher_suites):
            raise ValueError(f"{self.family} {self.version}: duplicate suites")

    @property
    def label(self) -> str:
        return f"{self.family} {self.version}"

    def tls13_fraction_at(self, on: _dt.date) -> float:
        """Fraction of this release's users with TLS 1.3 enabled at a date."""
        if not self.supported_versions:
            return 0.0
        if not self.tls13_schedule:
            return self.tls13_fraction
        fraction = 0.0
        for step_date, step_fraction in self.tls13_schedule:
            if on >= step_date:
                fraction = step_fraction
        return fraction

    # ---- hello construction ---------------------------------------------

    def build_hello(
        self,
        rng: random.Random | None = None,
        session_id: bytes = b"",
        include_tls13: bool | None = None,
    ) -> ClientHello:
        """Build the Client Hello this release sends.

        Args:
            rng: Randomness source for GREASE and the client random; a
                fixed default keeps unit usage deterministic.
            session_id: Optional resumption session id.
            include_tls13: Force the TLS 1.3 ``supported_versions``
                extension on/off; default draws from ``tls13_fraction``.
        """
        rng = rng if rng is not None else random.Random(0)
        if include_tls13 is None:
            include_tls13 = bool(self.supported_versions) and (
                self.tls13_fraction >= 1.0 or rng.random() < self.tls13_fraction
            )
        supported_versions = self.supported_versions if include_tls13 else ()

        suites = self.cipher_suites
        if self.shuffle_suites:
            shuffled = list(suites)
            rng.shuffle(shuffled)
            suites = tuple(shuffled)
        ext_types = list(self.extensions)
        if supported_versions and ExtensionType.SUPPORTED_VERSIONS not in ext_types:
            ext_types.append(int(ExtensionType.SUPPORTED_VERSIONS))
        groups = self.supported_groups
        if self.grease:
            suites = inject_grease(suites, rng)
            ext_types = [rng.choice(tuple(_GREASE_EXT)), *ext_types]
            if groups:
                groups = inject_grease(groups, rng)

        extensions = tuple(Extension(int(t)) for t in ext_types)
        return ClientHello(
            legacy_version=self.max_version,
            random=rng.randbytes(32),
            session_id=session_id,
            cipher_suites=tuple(suites),
            compression_methods=(0,),
            extensions=extensions,
            supported_groups=tuple(groups),
            ec_point_formats=tuple(self.ec_point_formats),
            supported_versions=tuple(supported_versions),
        )

    # ---- advertisement predicates over the static config ----------------

    def known_suites(self):
        """Registered suite objects, preference order."""
        return tuple(REGISTRY[c] for c in self.cipher_suites if c in REGISTRY)

    def advertises(self, predicate) -> bool:
        return any(predicate(s) for s in self.known_suites() if not s.scsv)

    def count_suites(self, predicate) -> int:
        return sum(1 for s in self.known_suites() if not s.scsv and predicate(s))


# GREASE values valid as extension types (RFC 8701 uses the same points).
from repro.tls.grease import GREASE_VALUES as _GREASE_EXT  # noqa: E402


@dataclass(frozen=True)
class AdoptionModel:
    """How a family's user base migrates to a new release.

    The adopted fraction Δt days after a release is::

        A(Δt) = (1 - tail) * (1 - exp(-Δt / fast_days))
              + tail * (1 - exp(-Δt / slow_days))

    ``fast_days`` captures auto-updating users, ``tail``/``slow_days``
    the abandoned-device long tail the paper highlights (§4.1, §7.2).
    A(Δt) is monotone, so release shares A_r - A_{r+1} are non-negative.
    """

    fast_days: float = 45.0
    tail: float = 0.08
    slow_days: float = 720.0

    def adopted_fraction(self, delta_days: float) -> float:
        if delta_days <= 0:
            return 0.0
        fast = 1.0 - math.exp(-delta_days / self.fast_days)
        slow = 1.0 - math.exp(-delta_days / self.slow_days)
        return (1.0 - self.tail) * fast + self.tail * slow


# Canonical adoption profiles.
BROWSER_ADOPTION = AdoptionModel(fast_days=40.0, tail=0.06, slow_days=700.0)
OS_LIBRARY_ADOPTION = AdoptionModel(fast_days=240.0, tail=0.15, slow_days=1300.0)
SERVERSIDE_TOOL_ADOPTION = AdoptionModel(fast_days=400.0, tail=0.35, slow_days=2000.0)
APP_ADOPTION = AdoptionModel(fast_days=90.0, tail=0.15, slow_days=1000.0)


@dataclass
class ClientFamily:
    """The release history of one program or library."""

    name: str
    category: str
    releases: list[ClientRelease]
    adoption: AdoptionModel = field(default_factory=lambda: BROWSER_ADOPTION)

    def __post_init__(self) -> None:
        self.releases = sorted(self.releases, key=lambda r: r.released)
        if not self.releases:
            raise ValueError(f"family {self.name} has no releases")
        for release in self.releases:
            if release.family != self.name:
                raise ValueError(
                    f"release {release.label} filed under family {self.name}"
                )

    def release_weights(self, on: _dt.date) -> dict[ClientRelease, float]:
        """Population share of each release at a given date.

        The oldest release absorbs the not-yet-adopted remainder, which
        models users who predate our first data point.
        """
        adopted = [
            self.adoption.adopted_fraction((on - r.released).days)
            for r in self.releases
        ]
        weights: dict[ClientRelease, float] = {}
        for i, release in enumerate(self.releases):
            upper = adopted[i] if i > 0 else 1.0
            lower = adopted[i + 1] if i + 1 < len(self.releases) else 0.0
            share = max(0.0, upper - lower) * release.weight
            if share > 0:
                weights[release] = share
        total = sum(weights.values())
        if total <= 0:
            return {self.releases[0]: 1.0}
        return {r: w / total for r, w in weights.items()}

    def current_release(self, on: _dt.date) -> ClientRelease:
        """The newest release available at a date (first release if none)."""
        current = self.releases[0]
        for release in self.releases:
            if release.released <= on:
                current = release
        return current

    def release(self, version: str) -> ClientRelease:
        """Look up a release by version label."""
        for candidate in self.releases:
            if candidate.version == version:
                return candidate
        raise KeyError(f"{self.name} has no release {version!r}")
