"""Safari release history.

Encodes: Table 3 (CBC: 28 -> 30 @7.1, 15 @9, 12 @10.1),
Table 4 (RC4: 7 -> 6 @6, 4 @9, removed @10.1),
Table 5 (3DES: 7 -> 6 @6.2, 3 @9.0),
Table 6 (TLS 1.1/1.2 @7, SSL3 removed @9).

The paper's tables date Safari 9 inconsistently (2015-09-30 in
Tables 4/5/6 vs 2016-09-01 in Table 3) and Safari 10.1 likewise; we use
the 2015-09-30 / 2017-03-27 release dates and record the discrepancy in
EXPERIMENTS.md.  Safari uses Apple's SecureTransport, shared with the
iOS/macOS system libraries (the library-collision rule of §4 applies).
"""

from __future__ import annotations

import datetime as _dt

from repro.clients import suites as cs
from repro.clients._common import (
    EXT_2012,
    EXT_2013,
    EXT_2014,
    EXT_2016,
    GROUPS_LEGACY_WIDE,
    GROUPS_2016,
    POINT_FORMATS,
    V_TLS10,
    V_TLS12,
    weave,
)
from repro.clients.profile import (
    BROWSER_ADOPTION,
    CATEGORY_BROWSERS,
    ClientFamily,
    ClientRelease,
)

# Safari's 2011-era configuration: 28 CBC (21 non-3DES + 7 3DES), 7 RC4.
_3DES_7 = cs.LEGACY_3DES_8[:-1]  # no anonymous 3DES in SecureTransport
_RC4_7 = cs.LEGACY_RC4_6 + (cs.DHE_DSS_RC4_SHA,)
_RC4_6 = cs.LEGACY_RC4_6

_V5_SUITES = weave(
    cs.LEGACY_CBC_21[:8],
    _RC4_7,
    cs.LEGACY_CBC_21[8:],
    _3DES_7,
)

_V6_SUITES = weave(
    cs.LEGACY_CBC_21[:8],
    _RC4_6,
    cs.LEGACY_CBC_21[8:],
    _3DES_7,
)

# Safari 7: TLS 1.2 with first-wave GCM (ECDSA variants only).
_V7_SUITES = weave(
    (cs.ECDHE_ECDSA_AES128_GCM, cs.ECDHE_ECDSA_AES256_GCM),
    cs.LEGACY_CBC_21[:8] + _RC4_6,
    cs.LEGACY_CBC_21[8:],
    _3DES_7,
)

# Safari 7.1 / 6.2 (2014-09-18): CBC up to 30 via two SHA-256 CBC suites,
# 3DES down to 6.
_V71_CBC_EXTRA = (cs.RSA_AES128_SHA256, cs.RSA_AES256_SHA256)
_3DES_6 = _3DES_7[:-1]
_V71_SUITES = weave(
    (cs.ECDHE_ECDSA_AES128_GCM, cs.ECDHE_ECDSA_AES256_GCM),
    cs.LEGACY_CBC_21[:8] + _RC4_6,
    cs.LEGACY_CBC_21[8:] + _V71_CBC_EXTRA + (cs.DHE_RSA_SEED_SHA,),
    _3DES_6,
)

# Safari 9: 15 CBC (12 non-3DES + 3 3DES), 4 RC4, full GCM, no SSL3.
_V9_CBC_12 = (
    cs.ECDHE_ECDSA_AES128_SHA256,
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES256_SHA384,
    cs.ECDHE_ECDSA_AES256_SHA,
    cs.ECDHE_RSA_AES128_SHA256,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_RSA_AES256_SHA384,
    cs.ECDHE_RSA_AES256_SHA,
    cs.RSA_AES128_SHA256,
    cs.RSA_AES128_SHA,
    cs.RSA_AES256_SHA256,
    cs.RSA_AES256_SHA,
)
_V9_3DES_3 = (cs.ECDHE_RSA_3DES_SHA, cs.ECDHE_ECDSA_3DES_SHA, cs.RSA_3DES_SHA)
_V9_AEAD = (
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES256_GCM,
    cs.ECDHE_RSA_AES128_GCM,
    cs.ECDHE_RSA_AES256_GCM,
    cs.RSA_AES128_GCM,
    cs.RSA_AES256_GCM,
)
_V9_SUITES = weave(
    _V9_AEAD,
    _V9_CBC_12[:6] + cs.REDUCED_RC4_4,
    _V9_CBC_12[6:],
    _V9_3DES_3,
)

# Safari 10.1: 12 CBC (9 non-3DES + 3 3DES), RC4 removed.
_V101_CBC_9 = _V9_CBC_12[:8] + (cs.RSA_AES128_SHA,)
_V101_SUITES = weave(
    _V9_AEAD,
    _V101_CBC_9,
    (),
    _V9_3DES_3,
)


def family() -> ClientFamily:
    """Safari's release history as a :class:`ClientFamily`."""

    def release(version, date, **kw):
        return ClientRelease(
            family="Safari",
            version=version,
            released=date,
            category=CATEGORY_BROWSERS,
            library="SecureTransport",
            ec_point_formats=POINT_FORMATS,
            **kw,
        )

    return ClientFamily(
        name="Safari",
        category=CATEGORY_BROWSERS,
        adoption=BROWSER_ADOPTION,
        releases=[
            release(
                "5", _dt.date(2011, 7, 20),
                max_version=V_TLS10,
                cipher_suites=_V5_SUITES,
                extensions=EXT_2012[:-1],
                supported_groups=GROUPS_LEGACY_WIDE,
                ssl3_fallback=True,
            ),
            release(
                "6", _dt.date(2012, 2, 25),
                max_version=V_TLS10,
                cipher_suites=_V6_SUITES,
                extensions=EXT_2012[:-1],
                supported_groups=GROUPS_LEGACY_WIDE,
                ssl3_fallback=True,
            ),
            release(
                "7", _dt.date(2013, 10, 22),
                max_version=V_TLS12,
                cipher_suites=_V7_SUITES,
                extensions=EXT_2013,
                supported_groups=GROUPS_LEGACY_WIDE,
                ssl3_fallback=True,
            ),
            release(
                "7.1", _dt.date(2014, 9, 18),
                max_version=V_TLS12,
                cipher_suites=_V71_SUITES,
                extensions=EXT_2013,
                supported_groups=GROUPS_LEGACY_WIDE,
                ssl3_fallback=True,
            ),
            # SSL3 support removed entirely (Table 6).
            release(
                "9", _dt.date(2015, 9, 30),
                max_version=V_TLS12,
                cipher_suites=_V9_SUITES,
                extensions=EXT_2014,
                supported_groups=GROUPS_LEGACY_WIDE,
            ),
            release(
                "10.1", _dt.date(2017, 3, 27),
                max_version=V_TLS12,
                cipher_suites=_V101_SUITES,
                extensions=EXT_2016,
                supported_groups=GROUPS_2016,
                rc4_policy="removed",
            ),
        ],
    )
