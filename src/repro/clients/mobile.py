"""Mobile OS TLS libraries: Android SDK and Apple SecureTransport.

These two families carry the largest traffic shares in the Notary
(§4.0.1: the 10 most common fingerprints are browsers and OS-provided
libraries, "mainly Android and iOS") and embody the paper's long-tail
story: Android 2.3 supports only TLS 1.0 with neither ECDHE nor AEAD
(§7.2), and the "iPad Air (library)" fingerprint is among the
longest-lived in the dataset (§4.1).
"""

from __future__ import annotations

import datetime as _dt

from repro.clients import suites as cs
from repro.clients._common import (
    GROUPS_2012,
    GROUPS_2016,
    POINT_FORMATS,
    V_TLS10,
    V_TLS12,
)
from repro.clients.profile import (
    CATEGORY_LIBRARIES,
    OS_LIBRARY_ADOPTION,
    AdoptionModel,
    ClientFamily,
    ClientRelease,
)
from repro.tls.extensions import ExtensionType as ET

# Android 2.3's infamous RC4-first default list.
_ANDROID_23 = (
    cs.RSA_RC4_128_MD5,
    cs.RSA_RC4_128_SHA,
    cs.RSA_AES128_SHA,
    cs.RSA_AES256_SHA,
    cs.RSA_3DES_SHA,
    cs.DHE_RSA_AES128_SHA,
    cs.DHE_RSA_AES256_SHA,
    cs.DHE_RSA_3DES_SHA,
    cs.DHE_DSS_AES128_SHA,
    cs.DHE_DSS_AES256_SHA,
    cs.DHE_DSS_3DES_SHA,
    cs.RSA_DES_SHA,
    cs.DHE_RSA_DES_SHA,
    cs.DHE_DSS_DES_SHA,
    cs.EXP_RSA_RC4_40_MD5,
    cs.EXP_RSA_DES40_SHA,
    cs.EXP_DHE_RSA_DES40_SHA,
    cs.EXP_DHE_DSS_DES40_SHA,
)

# Android 4.x: ECDHE added, exports dropped, AES-first ordering.
_ANDROID_4 = (
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES256_SHA,
    cs.ECDHE_RSA_AES256_SHA,
    cs.RSA_AES128_SHA,
    cs.RSA_AES256_SHA,
    cs.DHE_RSA_AES128_SHA,
    cs.DHE_RSA_AES256_SHA,
    cs.ECDHE_ECDSA_RC4_SHA,
    cs.ECDHE_RSA_RC4_SHA,
    cs.RSA_RC4_128_SHA,
    cs.RSA_RC4_128_MD5,
    cs.ECDHE_ECDSA_3DES_SHA,
    cs.ECDHE_RSA_3DES_SHA,
    cs.RSA_3DES_SHA,
)

# Android 5: TLS 1.2 + GCM, RC4 still present at the tail.
_ANDROID_5 = (
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.ECDHE_RSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES256_GCM,
    cs.ECDHE_RSA_AES256_GCM,
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES256_SHA,
    cs.ECDHE_RSA_AES256_SHA,
    cs.RSA_AES128_GCM,
    cs.RSA_AES256_GCM,
    cs.RSA_AES128_SHA,
    cs.RSA_AES256_SHA,
    cs.ECDHE_ECDSA_RC4_SHA,
    cs.ECDHE_RSA_RC4_SHA,
    cs.RSA_RC4_128_SHA,
    cs.RSA_3DES_SHA,
)

_ANDROID_6 = tuple(
    c for c in _ANDROID_5
    if c not in (cs.ECDHE_ECDSA_RC4_SHA, cs.ECDHE_RSA_RC4_SHA, cs.RSA_RC4_128_SHA)
)

# ChaCha20 first: many Android devices lack AES hardware support, and
# BoringSSL lets the client's preference win on equal-preference servers
# — the source of the ChaCha20 traffic in Figure 9.
_ANDROID_7 = (
    cs.CHACHA_ECDHE_ECDSA,
    cs.CHACHA_ECDHE_RSA,
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.ECDHE_RSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES256_GCM,
    cs.ECDHE_RSA_AES256_GCM,
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES256_SHA,
    cs.ECDHE_RSA_AES256_SHA,
    cs.RSA_AES128_GCM,
    cs.RSA_AES256_GCM,
    cs.RSA_AES128_SHA,
    cs.RSA_AES256_SHA,
)

_ANDROID_EXT = (
    int(ET.SERVER_NAME),
    int(ET.RENEGOTIATION_INFO),
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
    int(ET.SESSION_TICKET),
)
_ANDROID_EXT_MODERN = _ANDROID_EXT + (
    int(ET.SIGNATURE_ALGORITHMS),
    int(ET.APPLICATION_LAYER_PROTOCOL_NEGOTIATION),
    int(ET.EXTENDED_MASTER_SECRET),
)


def android_family() -> ClientFamily:
    """Android SDK TLS stack (apps and embedded WebView traffic)."""

    def release(version, date, **kw):
        return ClientRelease(
            family="Android SDK",
            version=version,
            released=date,
            category=CATEGORY_LIBRARIES,
            library="Android SDK",
            **kw,
        )

    return ClientFamily(
        name="Android SDK",
        category=CATEGORY_LIBRARIES,
        adoption=OS_LIBRARY_ADOPTION,
        releases=[
            release(
                "2.3", _dt.date(2010, 12, 6),
                max_version=V_TLS10,
                cipher_suites=_ANDROID_23,
                extensions=(int(ET.SERVER_NAME), int(ET.SESSION_TICKET)),
                ssl3_fallback=True,
            ),
            release(
                "4.1", _dt.date(2012, 7, 9),
                max_version=V_TLS10,
                cipher_suites=_ANDROID_4,
                extensions=_ANDROID_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                ssl3_fallback=True,
            ),
            release(
                "5.0", _dt.date(2014, 11, 12),
                max_version=V_TLS12,
                cipher_suites=_ANDROID_5,
                extensions=_ANDROID_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
            ),
            release(
                "6.0", _dt.date(2015, 10, 5),
                max_version=V_TLS12,
                cipher_suites=_ANDROID_6,
                extensions=_ANDROID_EXT_MODERN,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                rc4_policy="removed",
            ),
            release(
                "7.0", _dt.date(2016, 8, 22),
                max_version=V_TLS12,
                cipher_suites=_ANDROID_7,
                extensions=_ANDROID_EXT_MODERN,
                supported_groups=GROUPS_2016,
                ec_point_formats=POINT_FORMATS,
                rc4_policy="removed",
            ),
        ],
    )


# Apple SecureTransport library configurations track Safari's with the
# OS release cadence; the 7.x-era config is the long-lived "iPad Air
# (library)" fingerprint of §4.1.
def apple_family() -> ClientFamily:
    """iOS / macOS SecureTransport library traffic."""
    from repro.clients.safari import _V6_SUITES, _V7_SUITES, _V9_SUITES, _V101_SUITES
    from repro.clients._common import EXT_2012, EXT_2013, EXT_2014, EXT_2016, GROUPS_LEGACY_WIDE

    def release(version, date, **kw):
        return ClientRelease(
            family="Apple SecureTransport",
            version=version,
            released=date,
            category=CATEGORY_LIBRARIES,
            library="SecureTransport",
            ec_point_formats=POINT_FORMATS,
            **kw,
        )

    return ClientFamily(
        name="Apple SecureTransport",
        category=CATEGORY_LIBRARIES,
        adoption=AdoptionModel(fast_days=150.0, tail=0.18, slow_days=1300.0),
        releases=[
            release(
                "iOS 5", _dt.date(2011, 10, 12),
                max_version=V_TLS10,
                cipher_suites=_V6_SUITES,
                extensions=EXT_2012[:4],
                supported_groups=GROUPS_LEGACY_WIDE,
                ssl3_fallback=True,
            ),
            release(
                "iOS 7 (iPad Air)", _dt.date(2013, 9, 18),
                max_version=V_TLS12,
                cipher_suites=_V7_SUITES,
                extensions=EXT_2013[:5],
                supported_groups=GROUPS_LEGACY_WIDE,
                ssl3_fallback=True,
            ),
            release(
                "iOS 9", _dt.date(2015, 9, 16),
                max_version=V_TLS12,
                cipher_suites=_V9_SUITES,
                extensions=EXT_2014[:6],
                supported_groups=GROUPS_LEGACY_WIDE,
            ),
            release(
                "iOS 11", _dt.date(2017, 9, 19),
                max_version=V_TLS12,
                # BoringSSL-backed SecureTransport: 3DES dropped.
                cipher_suites=tuple(
                    c for c in _V101_SUITES
                    if c not in (cs.ECDHE_RSA_3DES_SHA, cs.ECDHE_ECDSA_3DES_SHA, cs.RSA_3DES_SHA)
                ),
                extensions=EXT_2016[:8],
                supported_groups=GROUPS_2016,
                rc4_policy="removed",
            ),
        ],
    )
