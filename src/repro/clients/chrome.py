"""Chrome release history.

Encodes the configuration changes the paper documents for Chrome:
Table 3 (CBC: 29 -> 16 @29, 10 @31, 9 @41, 7 @49, 5 @56),
Table 4 (RC4: 6 -> 4 @29, removed @43),
Table 5 (3DES: 8 -> 1 @29),
Table 6 (TLS 1.1 @22, TLS 1.2 @29, SSL3 fallback removed @39) and
§6.4 (TLS 1.3: draft-18 temporarily in 56, Google experiment 0x7e02
rolled out to a user subset from 63).
"""

from __future__ import annotations

import datetime as _dt

from repro.clients import suites as cs
from repro.clients._common import (
    DRAFT18,
    EXT_2012,
    EXT_2013,
    EXT_2014,
    EXT_2014_CHROME,
    EXT_2015,
    EXT_2016,
    EXT_TLS13,
    GOOGLE_7E02,
    GROUPS_2012,
    GROUPS_2016,
    POINT_FORMATS,
    V_TLS10,
    V_TLS11,
    V_TLS12,
    weave,
)
from repro.clients.profile import (
    BROWSER_ADOPTION,
    CATEGORY_BROWSERS,
    ClientFamily,
    ClientRelease,
)

_LEGACY_SUITES = weave(
    cs.LEGACY_CBC_21[:12],
    cs.LEGACY_RC4_6,
    cs.LEGACY_CBC_21[12:],
    cs.LEGACY_3DES_8,
)

_V29_SUITES = weave(
    cs.GCM_FIRST_WAVE,
    cs.REDUCED_CBC_15[:6] + cs.REDUCED_RC4_4,
    cs.REDUCED_CBC_15[6:],
    (cs.RSA_3DES_SHA,),
)

_V31_SUITES = weave(
    cs.GCM_FIRST_WAVE,
    cs.REDUCED_CBC_9[:4] + cs.REDUCED_RC4_4,
    cs.REDUCED_CBC_9[4:],
    (cs.RSA_3DES_SHA,),
)

_V33_SUITES = weave(
    cs.GCM_FIRST_WAVE + (cs.CHACHA_ECDHE_RSA_OLD, cs.CHACHA_ECDHE_ECDSA_OLD),
    cs.REDUCED_CBC_9[:4] + cs.REDUCED_RC4_4,
    cs.REDUCED_CBC_9[4:],
    (cs.RSA_3DES_SHA,),
)

_V41_SUITES = weave(
    cs.GCM_FIRST_WAVE + (cs.CHACHA_ECDHE_RSA_OLD, cs.CHACHA_ECDHE_ECDSA_OLD),
    cs.REDUCED_CBC_8[:4] + cs.REDUCED_RC4_4,
    cs.REDUCED_CBC_8[4:],
    (cs.RSA_3DES_SHA,),
)

_V43_SUITES = weave(
    cs.GCM_FIRST_WAVE + (cs.CHACHA_ECDHE_RSA_OLD, cs.CHACHA_ECDHE_ECDSA_OLD),
    cs.REDUCED_CBC_8,
    (),
    (cs.RSA_3DES_SHA,),
)

_MODERN_AEAD_CHROME = (
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.ECDHE_RSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES256_GCM,
    cs.ECDHE_RSA_AES256_GCM,
    cs.CHACHA_ECDHE_ECDSA,
    cs.CHACHA_ECDHE_RSA,
    cs.RSA_AES128_GCM,
    cs.RSA_AES256_GCM,
)

_V49_SUITES = weave(
    _MODERN_AEAD_CHROME,
    cs.REDUCED_CBC_6,
    (),
    (cs.RSA_3DES_SHA,),
)

_V56_SUITES = weave(
    _MODERN_AEAD_CHROME,
    cs.MODERN_CBC_4,
    (),
    (cs.RSA_3DES_SHA,),
)

_V63_SUITES = weave(
    cs.TLS13_SUITES,
    _MODERN_AEAD_CHROME,
    cs.MODERN_CBC_4,
    (cs.RSA_3DES_SHA,),
)


def family() -> ClientFamily:
    """Chrome's release history as a :class:`ClientFamily`."""

    def release(version, date, **kw):
        return ClientRelease(
            family="Chrome",
            version=version,
            released=date,
            category=CATEGORY_BROWSERS,
            library="BoringSSL",
            ec_point_formats=POINT_FORMATS,
            **kw,
        )

    return ClientFamily(
        name="Chrome",
        category=CATEGORY_BROWSERS,
        adoption=BROWSER_ADOPTION,
        releases=[
            release(
                "14", _dt.date(2011, 9, 16),
                max_version=V_TLS10,
                ssl3_fallback=True,
                cipher_suites=_LEGACY_SUITES,
                extensions=EXT_2012,
                supported_groups=GROUPS_2012,
            ),
            release(
                "22", _dt.date(2012, 9, 25),
                max_version=V_TLS11,
                ssl3_fallback=True,
                cipher_suites=_LEGACY_SUITES,
                extensions=EXT_2012,
                supported_groups=GROUPS_2012,
            ),
            release(
                "29", _dt.date(2013, 8, 20),
                max_version=V_TLS12,
                ssl3_fallback=True,
                cipher_suites=_V29_SUITES,
                extensions=EXT_2013,
                supported_groups=GROUPS_2012,
            ),
            release(
                "31", _dt.date(2013, 11, 12),
                max_version=V_TLS12,
                ssl3_fallback=True,
                cipher_suites=_V31_SUITES,
                extensions=EXT_2013,
                supported_groups=GROUPS_2012,
            ),
            release(
                "33", _dt.date(2014, 2, 20),
                max_version=V_TLS12,
                ssl3_fallback=True,
                cipher_suites=_V33_SUITES,
                extensions=EXT_2014,
                supported_groups=GROUPS_2012,
            ),
            # Extension-layout refresh only (Channel ID): same suites,
            # fresh fingerprint — the churn real fingerprint databases
            # have to keep up with.
            release(
                "37", _dt.date(2014, 8, 26),
                max_version=V_TLS12,
                cipher_suites=_V33_SUITES,
                extensions=EXT_2014_CHROME,
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
            ),
            # SSL3 fallback removed (Table 6).
            release(
                "39", _dt.date(2014, 11, 18),
                max_version=V_TLS12,
                cipher_suites=_V33_SUITES,
                extensions=EXT_2014_CHROME,
                supported_groups=GROUPS_2012,
            ),
            release(
                "41", _dt.date(2015, 3, 3),
                max_version=V_TLS12,
                cipher_suites=_V41_SUITES,
                extensions=EXT_2014_CHROME,
                supported_groups=GROUPS_2012,
            ),
            release(
                "43", _dt.date(2015, 5, 19),
                max_version=V_TLS12,
                rc4_policy="removed",
                cipher_suites=_V43_SUITES,
                extensions=EXT_2014_CHROME,
                supported_groups=GROUPS_2012,
            ),
            # Extended master secret rollout.
            release(
                "45", _dt.date(2015, 9, 1),
                max_version=V_TLS12,
                cipher_suites=_V43_SUITES,
                extensions=EXT_2015,
                supported_groups=GROUPS_2012,
                rc4_policy="removed",
            ),
            release(
                "49", _dt.date(2016, 3, 2),
                max_version=V_TLS12,
                cipher_suites=_V49_SUITES,
                extensions=EXT_2016,
                supported_groups=GROUPS_2016,
            ),
            release(
                "55", _dt.date(2016, 12, 1),
                max_version=V_TLS12,
                cipher_suites=_V49_SUITES,
                extensions=EXT_2016,
                supported_groups=GROUPS_2016,
                grease=True,
            ),
            release(
                "56", _dt.date(2017, 1, 25),
                max_version=V_TLS12,
                cipher_suites=weave(cs.TLS13_SUITES, _V56_SUITES, ()),
                extensions=EXT_TLS13,
                supported_groups=GROUPS_2016,
                supported_versions=(DRAFT18, V_TLS12, V_TLS11, V_TLS10),
                tls13_fraction=0.35,
                grease=True,
            ),
            # TLS 1.3 was switched back off after middlebox breakage (§6.4).
            release(
                "57", _dt.date(2017, 3, 9),
                max_version=V_TLS12,
                cipher_suites=_V56_SUITES,
                extensions=EXT_2016,
                supported_groups=GROUPS_2016,
                grease=True,
            ),
            release(
                "63", _dt.date(2017, 12, 5),
                max_version=V_TLS12,
                cipher_suites=_V63_SUITES,
                extensions=EXT_TLS13,
                supported_groups=GROUPS_2016,
                supported_versions=(GOOGLE_7E02, V_TLS12, V_TLS11, V_TLS10),
                tls13_schedule=(
                    (_dt.date(2017, 12, 5), 0.02),
                    (_dt.date(2018, 3, 1), 0.45),
                    (_dt.date(2018, 4, 1), 0.97),
                ),
                grease=True,
            ),
            release(
                "65", _dt.date(2018, 3, 6),
                max_version=V_TLS12,
                cipher_suites=_V63_SUITES,
                extensions=EXT_TLS13,
                supported_groups=GROUPS_2016,
                supported_versions=(GOOGLE_7E02, V_TLS12, V_TLS11, V_TLS10),
                tls13_schedule=(
                    (_dt.date(2018, 3, 6), 0.45),
                    (_dt.date(2018, 4, 1), 0.97),
                ),
                grease=True,
            ),
        ],
    )
