"""Niche client families behind the paper's special-case findings.

* GRID data-transfer clients negotiate NULL ciphers — TLS for mutual
  authentication only (§6.1: 99.99% of 2018 NULL-cipher connections).
* Nagios monitoring probes use anonymous DH plus their own auth (§6.2),
  and a legacy probe population explains the TLS_NULL_WITH_NULL_NULL
  connections (§6.1) and the export negotiations at one university (§5.5).
* Interwise conferencing clients accept an export RC4 suite they never
  offered — a protocol violation the paper observed directly (§5.5).
* Mobile security apps (Lookout, Kaspersky) and an unidentified SDK
  advertise anonymous and NULL suites; the SDK's share spike reproduces
  the mid-2015 jump from 5.8% to 12.9% (§6.2).
* A shuffling client emits a fresh cipher order per connection — the
  hypothesized source of the 42,188 single-day fingerprints (§4.1).
* Email, cloud-storage, dev-tool and malware families populate the
  remaining Table 2 categories.
"""

from __future__ import annotations

import datetime as _dt

from repro.clients import suites as cs
from repro.clients._common import (
    GROUPS_2012,
    GROUPS_2016,
    POINT_FORMATS,
    V_TLS10,
    V_TLS12,
)
from repro.clients.profile import (
    APP_ADOPTION,
    CATEGORY_AV,
    CATEGORY_CLOUD,
    CATEGORY_DEV_TOOLS,
    CATEGORY_EMAIL,
    CATEGORY_MALWARE,
    CATEGORY_MOBILE_APPS,
    CATEGORY_OS_TOOLS,
    SERVERSIDE_TOOL_ADOPTION,
    AdoptionModel,
    ClientFamily,
    ClientRelease,
)
from repro.tls.extensions import ExtensionType as ET

_BASIC_EXT = (
    int(ET.RENEGOTIATION_INFO),
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
)


def _release(family, version, date, category, **kw):
    return ClientRelease(
        family=family, version=version, released=date, category=category, **kw
    )


def grid_family() -> ClientFamily:
    """Globus/GRID data movers: NULL-cipher bulk transfer (§6.1)."""
    suites = (cs.RSA_NULL_SHA, cs.RSA_NULL_MD5, cs.RSA_AES128_SHA, cs.RSA_3DES_SHA)
    return ClientFamily(
        name="GridFTP",
        category=CATEGORY_DEV_TOOLS,
        adoption=SERVERSIDE_TOOL_ADOPTION,
        releases=[
            _release(
                "GridFTP", "5", _dt.date(2009, 1, 1), CATEGORY_DEV_TOOLS,
                max_version=V_TLS10,
                cipher_suites=suites,
                extensions=(),
                library="OpenSSL",
            ),
            _release(
                "GridFTP", "6", _dt.date(2014, 6, 1), CATEGORY_DEV_TOOLS,
                max_version=V_TLS12,
                cipher_suites=suites,
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
        ],
    )


def nagios_family() -> ClientFamily:
    """Nagios NRPE probes: anonymous DH with application-layer auth (§6.2)."""
    adh_suites = (
        cs.ADH_AES256_SHA,
        cs.ADH_AES128_SHA,
        cs.ADH_3DES_SHA,
        cs.EXP_ADH_DES40_SHA,
        cs.EXP_ADH_RC4_40_MD5,
    )
    return ClientFamily(
        name="Nagios NRPE",
        category=CATEGORY_OS_TOOLS,
        adoption=SERVERSIDE_TOOL_ADOPTION,
        releases=[
            # The NULL_WITH_NULL_NULL oddity of §6.1 and the export-ADH
            # negotiations of §5.5 both terminate at Nagios endpoints.
            _release(
                "Nagios NRPE", "null-probe", _dt.date(2006, 1, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS10,
                cipher_suites=(cs.NULL_NULL,),
                extensions=(),
                weight=0.012,
                library="OpenSSL",
            ),
            _release(
                "Nagios NRPE", "export-probe", _dt.date(2006, 6, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS10,
                cipher_suites=(cs.EXP_ADH_DES40_SHA, cs.EXP_ADH_RC4_40_MD5),
                extensions=(),
                weight=0.03,
                library="OpenSSL",
            ),
            _release(
                "Nagios NRPE", "2.x", _dt.date(2008, 1, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS10,
                cipher_suites=adh_suites,
                extensions=(),
                library="OpenSSL",
            ),
            _release(
                "Nagios NRPE", "3.x", _dt.date(2013, 1, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS12,
                cipher_suites=adh_suites,
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
        ],
    )


def interwise_family() -> ClientFamily:
    """Interwise conferencing: accepts the unoffered export suite (§5.5)."""
    return ClientFamily(
        name="Interwise",
        category=CATEGORY_OS_TOOLS,
        adoption=SERVERSIDE_TOOL_ADOPTION,
        releases=[
            _release(
                "Interwise", "client", _dt.date(2008, 1, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS10,
                cipher_suites=(cs.RSA_RC4_128_SHA,),
                extensions=(),
                tolerates_unoffered_suite=True,
            ),
        ],
    )


def security_apps() -> list[ClientFamily]:
    """Mobile security applications advertising anon/NULL suites (§6.1, §6.2)."""
    lookout = ClientFamily(
        name="Lookout Personal",
        category=CATEGORY_MOBILE_APPS,
        adoption=APP_ADOPTION,
        releases=[
            _release(
                "Lookout Personal", "2013", _dt.date(2013, 3, 1), CATEGORY_MOBILE_APPS,
                max_version=V_TLS10,
                cipher_suites=(
                    cs.RSA_AES128_SHA,
                    cs.RSA_AES256_SHA,
                    cs.RSA_3DES_SHA,
                    cs.RSA_RC4_128_SHA,
                    cs.ADH_AES128_SHA,
                    cs.ADH_AES256_SHA,
                    cs.RSA_NULL_SHA,
                ),
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library=None,
            ),
            _release(
                "Lookout Personal", "2015", _dt.date(2015, 5, 1), CATEGORY_MOBILE_APPS,
                max_version=V_TLS12,
                cipher_suites=(
                    cs.ECDHE_RSA_AES128_GCM,
                    cs.RSA_AES128_SHA,
                    cs.RSA_AES256_SHA,
                    cs.RSA_3DES_SHA,
                    cs.ADH_AES128_SHA,
                    cs.ADH_AES256_SHA,
                    cs.RSA_NULL_SHA,
                ),
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
            ),
        ],
    )
    craftar = ClientFamily(
        name="Craftar Image Recognition",
        category=CATEGORY_MOBILE_APPS,
        adoption=APP_ADOPTION,
        releases=[
            _release(
                "Craftar Image Recognition", "1", _dt.date(2014, 2, 1),
                CATEGORY_MOBILE_APPS,
                max_version=V_TLS10,
                cipher_suites=(
                    cs.RSA_AES128_SHA,
                    cs.RSA_NULL_SHA,
                    cs.RSA_NULL_MD5,
                    cs.RSA_3DES_SHA,
                ),
                extensions=(),
            ),
        ],
    )
    kaspersky = ClientFamily(
        name="Kaspersky",
        category=CATEGORY_AV,
        adoption=APP_ADOPTION,
        releases=[
            _release(
                "Kaspersky", "2014", _dt.date(2014, 1, 1), CATEGORY_AV,
                max_version=V_TLS12,
                cipher_suites=(
                    cs.ECDHE_RSA_AES128_GCM,
                    cs.ECDHE_RSA_AES128_SHA,
                    cs.RSA_AES128_SHA,
                    cs.RSA_AES256_SHA,
                    cs.RSA_3DES_SHA,
                    cs.ADH_AES128_SHA,
                    cs.AECDH_AES128_SHA,
                ),
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
        ],
    )
    avast = ClientFamily(
        name="Avast",
        category=CATEGORY_AV,
        adoption=APP_ADOPTION,
        releases=[
            _release(
                "Avast", "10", _dt.date(2014, 10, 1), CATEGORY_AV,
                max_version=V_TLS12,
                cipher_suites=(
                    cs.ECDHE_RSA_AES256_GCM,
                    cs.ECDHE_RSA_AES128_GCM,
                    cs.ECDHE_RSA_AES256_SHA,
                    cs.ECDHE_RSA_AES128_SHA,
                    cs.RSA_AES256_SHA,
                    cs.RSA_AES128_SHA,
                    cs.RSA_RC4_128_SHA,
                    cs.RSA_3DES_SHA,
                ),
                extensions=_BASIC_EXT + (int(ET.SIGNATURE_ALGORITHMS),),
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
        ],
    )
    return [lookout, craftar, kaspersky, avast]


def anon_sdk_family() -> ClientFamily:
    """Unidentified SDK advertising anonymous suites (§6.2's spike).

    The paper could not attribute most anon-advertising traffic to known
    software; this family models that population (``in_database=False``)
    and its share curve carries the mid-2015 spike.
    """
    base = (
        cs.RSA_AES128_SHA,
        cs.RSA_AES256_SHA,
        cs.DHE_RSA_AES128_SHA,
        cs.ADH_AES128_SHA,
        cs.ADH_AES256_SHA,
        cs.AECDH_AES128_SHA,
        cs.RSA_NULL_SHA,
        cs.RSA_3DES_SHA,
    )
    return ClientFamily(
        name="Unidentified anon SDK",
        category=CATEGORY_OS_TOOLS,
        adoption=AdoptionModel(fast_days=300.0, tail=0.15, slow_days=1200.0),
        releases=[
            # The pre-2015 generation advertises anon but not NULL; the
            # 2015 update introduces NULL alongside the share spike, which
            # is why the paper sees the two spikes correlate (§6.2).
            _release(
                "Unidentified anon SDK", "A", _dt.date(2011, 1, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS10,
                cipher_suites=tuple(c for c in base if c != cs.RSA_NULL_SHA),
                extensions=(),
                in_database=False,
            ),
            _release(
                "Unidentified anon SDK", "B", _dt.date(2015, 4, 15), CATEGORY_OS_TOOLS,
                max_version=V_TLS12,
                cipher_suites=base + (cs.ECDHE_RSA_AES128_GCM,),
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                in_database=False,
            ),
            # Later update drops the NULL suite but keeps anon DH — by
            # 2018 NULL advertisement is far rarer than anon (§6.1 vs §6.2).
            _release(
                "Unidentified anon SDK", "C", _dt.date(2016, 6, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS12,
                cipher_suites=tuple(
                    c for c in base + (cs.ECDHE_RSA_AES128_GCM,)
                    if c != cs.RSA_NULL_SHA
                ),
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                in_database=False,
            ),
        ],
    )


def shuffler_family() -> ClientFamily:
    """A client with unstable cipher order — one fingerprint per day (§4.1)."""
    return ClientFamily(
        name="Shuffling client",
        category=CATEGORY_OS_TOOLS,
        adoption=SERVERSIDE_TOOL_ADOPTION,
        releases=[
            _release(
                "Shuffling client", "1", _dt.date(2012, 1, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS10,
                cipher_suites=(
                    cs.RSA_AES128_SHA,
                    cs.RSA_AES256_SHA,
                    cs.RSA_3DES_SHA,
                    cs.RSA_RC4_128_SHA,
                    cs.DHE_RSA_AES128_SHA,
                    cs.DHE_RSA_AES256_SHA,
                    cs.ECDHE_RSA_AES128_SHA,
                    cs.ECDHE_RSA_AES256_SHA,
                ),
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                shuffle_suites=True,
                in_database=False,
            ),
        ],
    )


def embedded_family() -> ClientFamily:
    """Abandoned embedded / IoT clients — the unlabeled long tail (§7.2)."""
    legacy = (
        cs.RSA_RC4_128_MD5,
        cs.RSA_RC4_128_SHA,
        cs.RSA_AES128_SHA,
        cs.RSA_3DES_SHA,
        cs.RSA_DES_SHA,
    )
    newer = (
        cs.RSA_AES128_SHA,
        cs.RSA_AES256_SHA,
        cs.ECDHE_RSA_AES128_SHA,
        cs.RSA_RC4_128_SHA,
        cs.RSA_3DES_SHA,
    )
    modern = (
        cs.ECDHE_RSA_AES128_GCM,
        cs.ECDHE_RSA_AES128_SHA,
        cs.RSA_AES128_GCM,
        cs.RSA_AES128_SHA,
        cs.RSA_3DES_SHA,
    )
    return ClientFamily(
        name="Embedded devices",
        category=CATEGORY_OS_TOOLS,
        adoption=AdoptionModel(fast_days=420.0, tail=0.22, slow_days=1800.0),
        releases=[
            _release(
                "Embedded devices", "gen1", _dt.date(2008, 1, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS10,
                cipher_suites=legacy,
                extensions=(),
                in_database=False,
                ssl3_fallback=True,
            ),
            _release(
                "Embedded devices", "gen2", _dt.date(2012, 9, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS10,
                cipher_suites=newer,
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                in_database=False,
            ),
            _release(
                "Embedded devices", "gen3", _dt.date(2015, 3, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS12,
                cipher_suites=modern,
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                in_database=False,
            ),
        ],
    )


def iot_ccm_family() -> ClientFamily:
    """Constrained IoT stacks (mbedTLS-style) offering AES-CCM.

    The source of Figure 10's marginal AES-CCM advertisement (0.3% of
    offers across the dataset).
    """
    return ClientFamily(
        name="IoT CCM devices",
        category=CATEGORY_OS_TOOLS,
        adoption=SERVERSIDE_TOOL_ADOPTION,
        releases=[
            _release(
                "IoT CCM devices", "1", _dt.date(2016, 6, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS12,
                cipher_suites=(
                    0xC0AE,  # TLS_ECDHE_ECDSA_WITH_AES_128_CCM_8
                    0xC0AC,  # TLS_ECDHE_ECDSA_WITH_AES_128_CCM
                    cs.ECDHE_RSA_AES128_GCM,
                    cs.RSA_AES128_SHA,
                ),
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                in_database=False,
            ),
        ],
    )


def ssl3_only_family() -> ClientFamily:
    """Appliances that never learned TLS — the SSL 3 remnant of §5.1.

    Their connections negotiate SSL 3 when the server still enables it
    and fail outright otherwise; the share curve in the population model
    shrinks them below 0.01% of connections by 2018.
    """
    from repro.tls.versions import SSL3

    return ClientFamily(
        name="SSL3-only appliances",
        category=CATEGORY_OS_TOOLS,
        adoption=SERVERSIDE_TOOL_ADOPTION,
        releases=[
            _release(
                "SSL3-only appliances", "gen0", _dt.date(2005, 1, 1), CATEGORY_OS_TOOLS,
                max_version=SSL3.wire,
                cipher_suites=(
                    cs.RSA_RC4_128_MD5,
                    cs.RSA_RC4_128_SHA,
                    cs.RSA_3DES_SHA,
                    cs.RSA_DES_SHA,
                ),
                extensions=(),
                in_database=False,
            ),
        ],
    )


def splunk_family() -> ClientFamily:
    """Splunk forwarders: static-ECDH traffic to indexers on 9997 (§6.3.1)."""
    return ClientFamily(
        name="Splunk forwarder",
        category=CATEGORY_OS_TOOLS,
        adoption=SERVERSIDE_TOOL_ADOPTION,
        releases=[
            _release(
                "Splunk forwarder", "6", _dt.date(2013, 10, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS12,
                cipher_suites=(
                    cs.ECDH_RSA_AES256_SHA,
                    cs.ECDH_RSA_AES128_SHA,
                    cs.RSA_AES256_SHA,
                    cs.RSA_AES128_SHA,
                    cs.RSA_3DES_SHA,
                ),
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
        ],
    )


def unknown_longtail_family() -> ClientFamily:
    """Ordinary-looking clients the fingerprint DB cannot label.

    The paper attributes 69.23% of fingerprintable connections; the rest
    comes from unremarkable software nobody harvested fingerprints for.
    These configurations are deliberately mainstream (no weak-cipher
    stories attach to them) but differ from every harvested profile.
    """
    gen1 = (
        cs.DHE_RSA_AES256_SHA,
        cs.DHE_RSA_AES128_SHA,
        cs.RSA_AES256_SHA,
        cs.RSA_AES128_SHA,
        cs.RSA_RC4_128_SHA,
        cs.RSA_3DES_SHA,
        cs.RSA_CAMELLIA128_SHA,
    )
    gen2 = (
        cs.ECDHE_RSA_AES128_SHA,
        cs.ECDHE_RSA_AES256_SHA,
        cs.DHE_RSA_AES128_SHA,
        cs.RSA_AES128_SHA,
        cs.RSA_AES256_SHA,
        cs.RSA_RC4_128_SHA,
        cs.RSA_3DES_SHA,
    )
    gen3 = (
        cs.ECDHE_RSA_AES128_GCM,
        cs.ECDHE_RSA_AES256_GCM,
        cs.ECDHE_RSA_AES128_SHA,
        cs.ECDHE_RSA_AES256_SHA,
        cs.RSA_AES128_GCM,
        cs.RSA_AES128_SHA,
        cs.RSA_3DES_SHA,
    )
    return ClientFamily(
        name="Unknown long tail",
        category=CATEGORY_OS_TOOLS,
        adoption=AdoptionModel(fast_days=320.0, tail=0.2, slow_days=1500.0),
        releases=[
            _release(
                "Unknown long tail", "gen1", _dt.date(2010, 1, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS10,
                cipher_suites=gen1,
                extensions=(int(ET.RENEGOTIATION_INFO),),
                in_database=False,
            ),
            _release(
                "Unknown long tail", "gen2", _dt.date(2013, 4, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS12,
                cipher_suites=gen2,
                extensions=_BASIC_EXT + (int(ET.SERVER_NAME),),
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                in_database=False,
            ),
            _release(
                "Unknown long tail", "gen3", _dt.date(2016, 2, 1), CATEGORY_OS_TOOLS,
                max_version=V_TLS12,
                cipher_suites=gen3,
                extensions=_BASIC_EXT + (int(ET.SERVER_NAME), int(ET.SIGNATURE_ALGORITHMS)),
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                in_database=False,
            ),
        ],
    )


def email_families() -> list[ClientFamily]:
    """Email clients (Table 2: Apple Mail, Thunderbird)."""
    from repro.clients.safari import _V7_SUITES, _V9_SUITES
    from repro.clients._common import EXT_2013, EXT_2014, GROUPS_LEGACY_WIDE

    apple_mail = ClientFamily(
        name="Apple Mail",
        category=CATEGORY_EMAIL,
        adoption=AdoptionModel(fast_days=200.0, tail=0.25, slow_days=1600.0),
        releases=[
            _release(
                "Apple Mail", "7", _dt.date(2013, 10, 22), CATEGORY_EMAIL,
                max_version=V_TLS12,
                cipher_suites=_V7_SUITES,
                extensions=EXT_2013[:6],
                supported_groups=GROUPS_LEGACY_WIDE,
                ec_point_formats=POINT_FORMATS,
                library="SecureTransport",
            ),
            _release(
                "Apple Mail", "9", _dt.date(2015, 9, 30), CATEGORY_EMAIL,
                max_version=V_TLS12,
                cipher_suites=_V9_SUITES,
                extensions=EXT_2014[:7],
                supported_groups=GROUPS_LEGACY_WIDE,
                ec_point_formats=POINT_FORMATS,
                library="SecureTransport",
            ),
        ],
    )
    from repro.clients.firefox import _V33_SUITES, _V47_SUITES
    from repro.clients._common import EXT_2014 as _E14, EXT_2016 as _E16

    thunderbird = ClientFamily(
        name="Thunderbird",
        category=CATEGORY_EMAIL,
        adoption=AdoptionModel(fast_days=120.0, tail=0.15, slow_days=1200.0),
        releases=[
            _release(
                "Thunderbird", "31", _dt.date(2014, 7, 22), CATEGORY_EMAIL,
                max_version=V_TLS12,
                cipher_suites=_V33_SUITES,
                extensions=_E14[:7],
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="NSS",
            ),
            _release(
                "Thunderbird", "52", _dt.date(2017, 4, 18), CATEGORY_EMAIL,
                max_version=V_TLS12,
                cipher_suites=_V47_SUITES,
                extensions=_E16[:8],
                supported_groups=GROUPS_2016,
                ec_point_formats=POINT_FORMATS,
                library="NSS",
            ),
        ],
    )
    return [apple_mail, thunderbird]


def cloud_families() -> list[ClientFamily]:
    """Cloud-storage sync clients (Table 2: Dropbox) — pinned OpenSSL."""
    from repro.clients.libraries import _OPENSSL_101, _OPENSSL_102, _OPENSSL_EXT_101

    dropbox = ClientFamily(
        name="Dropbox",
        category=CATEGORY_CLOUD,
        adoption=APP_ADOPTION,
        releases=[
            _release(
                "Dropbox", "2", _dt.date(2013, 2, 1), CATEGORY_CLOUD,
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_101[:20] + (cs.RSA_RC4_128_SHA, cs.RSA_3DES_SHA),
                extensions=_OPENSSL_EXT_101,  # stock 1.0.1: heartbeats
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
            _release(
                "Dropbox", "40", _dt.date(2017, 1, 1), CATEGORY_CLOUD,
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_102[:20],
                extensions=_OPENSSL_EXT_101[:5],
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
        ],
    )
    return [dropbox]


def devtool_families() -> list[ClientFamily]:
    """Developer tools (Table 2: git, Flux) — libcurl/OpenSSL stacks."""
    from repro.clients.libraries import _OPENSSL_101, _OPENSSL_102, _OPENSSL_110, _OPENSSL_EXT_101, _OPENSSL_EXT_110

    git = ClientFamily(
        name="git",
        category=CATEGORY_DEV_TOOLS,
        adoption=AdoptionModel(fast_days=150.0, tail=0.20, slow_days=1400.0),
        releases=[
            _release(
                "git", "1.9", _dt.date(2014, 2, 14), CATEGORY_DEV_TOOLS,
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_101[:24],
                extensions=_OPENSSL_EXT_101,  # stock 1.0.1: heartbeats
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
            _release(
                "git", "2.14", _dt.date(2017, 8, 4), CATEGORY_DEV_TOOLS,
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_110,
                extensions=_OPENSSL_EXT_110,
                supported_groups=GROUPS_2016,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
        ],
    )
    shodan = ClientFamily(
        name="Shodan scanner",
        category=CATEGORY_DEV_TOOLS,
        adoption=SERVERSIDE_TOOL_ADOPTION,
        releases=[
            _release(
                "Shodan scanner", "1", _dt.date(2013, 1, 1), CATEGORY_DEV_TOOLS,
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_101
                + (
                    cs.ADH_AES128_SHA,
                    cs.ADH_AES256_SHA,
                    cs.ADH_3DES_SHA,
                    cs.AECDH_AES128_SHA,
                    cs.RSA_NULL_SHA,
                    cs.RSA_NULL_MD5,
                    cs.EXP_ADH_RC4_40_MD5,
                ),
                extensions=_OPENSSL_EXT_101[:5],
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
        ],
    )
    return [git, shodan]


def malware_families() -> list[ClientFamily]:
    """Malware & PUP (Table 2: Zbot, InstallMoney) on stale static OpenSSL."""
    from repro.clients.libraries import _OPENSSL_098, _OPENSSL_EXT_OLD

    zbot = ClientFamily(
        name="Zbot",
        category=CATEGORY_MALWARE,
        adoption=SERVERSIDE_TOOL_ADOPTION,
        releases=[
            _release(
                "Zbot", "static-0.9.8", _dt.date(2011, 6, 1), CATEGORY_MALWARE,
                max_version=V_TLS10,
                cipher_suites=_OPENSSL_098,
                extensions=(),
                library=None,
            ),
        ],
    )
    installmoney = ClientFamily(
        name="InstallMoney",
        category=CATEGORY_MALWARE,
        adoption=APP_ADOPTION,
        releases=[
            _release(
                "InstallMoney", "1", _dt.date(2015, 3, 1), CATEGORY_MALWARE,
                max_version=V_TLS12,
                cipher_suites=(
                    cs.ECDHE_RSA_AES128_GCM,
                    cs.ECDHE_RSA_AES128_SHA,
                    cs.RSA_AES128_SHA,
                    cs.RSA_RC4_128_SHA,
                    cs.RSA_3DES_SHA,
                ),
                extensions=_BASIC_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
            ),
        ],
    )
    return [zbot, installmoney]


def os_tool_families() -> list[ClientFamily]:
    """OS services (Table 2: Apple Spotlight)."""
    from repro.clients.safari import _V7_SUITES, _V9_SUITES
    from repro.clients._common import EXT_2013, EXT_2014, GROUPS_LEGACY_WIDE

    spotlight = ClientFamily(
        name="Apple Spotlight",
        category=CATEGORY_OS_TOOLS,
        adoption=AdoptionModel(fast_days=200.0, tail=0.2, slow_days=1400.0),
        releases=[
            _release(
                "Apple Spotlight", "10.9", _dt.date(2013, 10, 22), CATEGORY_OS_TOOLS,
                max_version=V_TLS12,
                cipher_suites=_V7_SUITES,
                extensions=EXT_2013[:4],
                supported_groups=GROUPS_LEGACY_WIDE,
                ec_point_formats=POINT_FORMATS,
                library="SecureTransport",
            ),
            _release(
                "Apple Spotlight", "10.11", _dt.date(2015, 9, 30), CATEGORY_OS_TOOLS,
                max_version=V_TLS12,
                cipher_suites=_V9_SUITES,
                extensions=EXT_2014[:5],
                supported_groups=GROUPS_LEGACY_WIDE,
                ec_point_formats=POINT_FORMATS,
                library="SecureTransport",
            ),
        ],
    )
    return [spotlight]
