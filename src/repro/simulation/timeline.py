"""The attack and event timeline of §2.2.

Disclosure dates for the vulnerabilities the paper studies, plus the
non-attack events the figures annotate (Snowden revelations, RFC 7465,
browser RC4-removal dates).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    """One timeline event (attack disclosure or ecosystem milestone)."""

    name: str
    date: _dt.date
    kind: str  # "attack" | "milestone" | "browser"
    description: str = ""


BEAST = Event(
    "BEAST", _dt.date(2011, 9, 6), "attack",
    "MITM plaintext recovery against CBC in TLS <= 1.0 (predictable IVs)",
)
LUCKY13 = Event(
    "Lucky13", _dt.date(2012, 12, 6), "attack",
    "timing attack against CBC-mode TLS implementations",
)
RC4_ATTACKS = Event(
    "RC4", _dt.date(2013, 3, 12), "attack",
    "single-byte/double-byte bias plaintext recovery against RC4",
)
SNOWDEN = Event(
    "Snowden", _dt.date(2013, 6, 6), "milestone",
    "surveillance revelations; spurred the shift to forward secrecy",
)
HEARTBLEED = Event(
    "Heartbleed", _dt.date(2014, 4, 7), "attack",
    "OpenSSL heartbeat buffer over-read leaking process memory",
)
POODLE = Event(
    "POODLE", _dt.date(2014, 10, 14), "attack",
    "SSL 3 CBC padding-oracle exploit via protocol fallback",
)
RC4_PASSWORDS = Event(
    "RC4 passwords", _dt.date(2015, 3, 26), "attack",
    "password recovery attacks against RC4 in TLS",
)
FREAK = Event(
    "FREAK", _dt.date(2015, 3, 3), "attack",
    "downgrade to export-grade RSA key transport",
)
LOGJAM = Event(
    "Logjam", _dt.date(2015, 5, 20), "attack",
    "downgrade to export-grade DHE key exchange",
)
RFC_7465 = Event(
    "RFC-7465", _dt.date(2015, 2, 1), "milestone",
    "Prohibiting RC4 Cipher Suites",
)
RC4_NOMORE = Event(
    "RC4 no more", _dt.date(2015, 7, 15), "attack",
    "NOMORE: practical RC4 plaintext recovery in TLS and WPA-TKIP",
)
SWEET32 = Event(
    "Sweet32", _dt.date(2016, 8, 31), "attack",
    "birthday-bound collision attack on 64-bit block ciphers (3DES)",
)

ATTACK_TIMELINE: tuple[Event, ...] = (
    BEAST,
    LUCKY13,
    RC4_ATTACKS,
    SNOWDEN,
    HEARTBLEED,
    POODLE,
    RFC_7465,
    FREAK,
    RC4_PASSWORDS,
    LOGJAM,
    RC4_NOMORE,
    SWEET32,
)

# Browser RC4-removal dates — the black dots on Figure 6.
BROWSER_RC4_REMOVAL: tuple[Event, ...] = (
    Event("Chrome drops RC4", _dt.date(2015, 5, 19), "browser"),
    Event("IE/Edge drops RC4", _dt.date(2015, 5, 20), "browser"),
    Event("Opera drops RC4", _dt.date(2015, 6, 9), "browser"),
    Event("Firefox drops RC4", _dt.date(2016, 1, 26), "browser"),
    Event("Safari drops RC4", _dt.date(2017, 3, 27), "browser"),
)


def events_between(start: _dt.date, end: _dt.date) -> list[Event]:
    """Timeline events inside a date window, sorted by date."""
    return sorted(
        (e for e in ATTACK_TIMELINE + BROWSER_RC4_REMOVAL if start <= e.date <= end),
        key=lambda e: e.date,
    )
