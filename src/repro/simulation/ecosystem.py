"""The calibrated ecosystem model: one object that runs the whole study.

``EcosystemModel`` wires the client population, server population,
passive monitor and Censys archive together and exposes the datasets
every benchmark consumes.  Results are cached per instance, so a bench
module can share one model across all its experiments.

The expectation dataset goes through the run engine
(:mod:`repro.engine`): month-sharded across workers (``workers`` /
``REPRO_WORKERS``), and persisted to the dataset cache
(``REPRO_CACHE_DIR``, disable with ``use_cache=False`` or
``REPRO_CACHE=0``) so repeat processes load instead of re-simulating.
"""

from __future__ import annotations

import datetime as _dt
import os
import random
from dataclasses import dataclass, field

from repro import obs
from repro.clients.population import ClientPopulation, default_population
from repro.core.database import FingerprintDatabase, build_default_database
from repro.notary.monitor import PassiveMonitor
from repro.notary.generator import TrafficGenerator
from repro.notary.store import NotaryStore
from repro.scanner.censys import CENSYS_FIRST_SCAN, CENSYS_LAST_SCAN, CensysArchive
from repro.scanner.sslpulse import SslPulse
from repro.servers.population import ServerPopulation

_log = obs.get_logger("repro.simulation.ecosystem")

#: The Notary observation window (§3.1).
STUDY_START = _dt.date(2012, 1, 1)
STUDY_END = _dt.date(2018, 4, 1)


def _cache_enabled_by_env() -> bool:
    return os.environ.get("REPRO_CACHE", "").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


@dataclass
class EcosystemModel:
    """Client + server populations plus the two measurement pipelines."""

    start: _dt.date = STUDY_START
    end: _dt.date = STUDY_END
    seed: int = 7
    clients: ClientPopulation = field(default_factory=default_population)
    servers: ServerPopulation = field(default_factory=ServerPopulation)
    #: Worker processes for the expectation run; None resolves via
    #: ``REPRO_WORKERS`` then ``os.cpu_count()``; 0 forces serial.
    workers: int | None = None
    #: Persistent dataset cache; None resolves via ``REPRO_CACHE``.
    use_cache: bool | None = None
    #: Ignore any cached dataset and overwrite it with a fresh run.
    rebuild: bool = False
    #: Fault-injection spec (``kind:rate,...``); None resolves via
    #: ``REPRO_FAULTS``.  See :mod:`repro.engine.faults`.
    faults: str | None = None
    #: Resume a killed run from its month checkpoints; None resolves
    #: via ``REPRO_RESUME``.
    resume: bool | None = None
    #: Dataset scale multiplier (records per month ×N at weight/N);
    #: None resolves via ``REPRO_SCALE`` then 1.  See
    #: :class:`repro.notary.generator.TrafficGenerator`.
    scale: int | None = None

    def __post_init__(self) -> None:
        self._passive_store: NotaryStore | None = None
        self._montecarlo_store: NotaryStore | None = None
        self._censys: CensysArchive | None = None
        self._database: FingerprintDatabase | None = None
        self._scans: dict[tuple[str, int], CensysArchive] = {}
        self._pulse: SslPulse | None = None

    def _cache_enabled(self) -> bool:
        if self.use_cache is not None:
            return self.use_cache
        return _cache_enabled_by_env()

    # ---- passive (Notary) ----------------------------------------------------

    def _resolved_scale(self) -> int:
        from repro.engine import runner

        return runner.resolve_scale(self.scale)

    def _build_passive_store(self) -> NotaryStore:
        from repro.engine import runner

        return runner.run_expectation(
            self.clients, self.servers, self.start, self.end,
            workers=self.workers,
            resume=self.resume,
            faults_spec=self.faults,
            scale=self.scale,
        )

    def passive_store(self) -> NotaryStore:
        """The expectation-mode Notary dataset (memoized + disk-cached).

        On a cache miss the build runs under the advisory per-key build
        lock: if another process is already simulating the same dataset,
        this one waits briefly for that blob to land instead of
        duplicating a multi-minute run (and builds anyway if it never
        does — the lock is advisory, not load-bearing).
        """
        if self._passive_store is None:
            from repro.engine import cache as dataset_cache

            with obs.span(
                "passive_store",
                start=self.start.isoformat(),
                end=self.end.isoformat(),
            ):
                cache_on = self._cache_enabled()
                key = None
                store = None
                scale = self._resolved_scale()
                if cache_on:
                    key = dataset_cache.dataset_key(
                        self.clients, self.servers, self.start, self.end,
                        scale=scale,
                    )
                    if not self.rebuild:
                        store = dataset_cache.load_store(key)
                if store is None:
                    if cache_on and key is not None:
                        with dataset_cache.build_lock(key) as acquired:
                            if not acquired and not self.rebuild:
                                _log.info(
                                    "another process is building dataset %s; "
                                    "waiting for its blob",
                                    key[:16],
                                )
                                store = dataset_cache.wait_for_store(key)
                            if store is None:
                                store = self._build_passive_store()
                                dataset_cache.save_store(
                                    store,
                                    key,
                                    meta={
                                        "start": self.start.isoformat(),
                                        "end": self.end.isoformat(),
                                        "records": len(store),
                                        "scale": scale,
                                    },
                                )
                    else:
                        store = self._build_passive_store()
                else:
                    _log.debug(
                        "passive store served from dataset cache (%d records)",
                        len(store),
                    )
                self._passive_store = store
        return self._passive_store

    def montecarlo_store(self, connections_per_month: int = 2000) -> NotaryStore:
        """A sampled, day-resolution Notary dataset (cached).

        Stays serial on purpose: the sample stream draws from one
        sequential RNG, so sharding would change the dataset.
        """
        if self._montecarlo_store is None:
            with obs.span(
                "montecarlo_store", connections_per_month=connections_per_month
            ):
                monitor = PassiveMonitor()
                generator = TrafficGenerator(self.clients, self.servers, monitor)
                generator.run_montecarlo(
                    self.start,
                    self.end,
                    connections_per_month=connections_per_month,
                    rng=random.Random(self.seed),
                )
                self._montecarlo_store = monitor.store
        return self._montecarlo_store

    # ---- active (Censys) ------------------------------------------------------

    def censys(
        self,
        probes: tuple[str, ...] = ("chrome2015", "ssl3", "export"),
        interval_days: int = 28,
        start: _dt.date = CENSYS_FIRST_SCAN,
        end: _dt.date = CENSYS_LAST_SCAN,
    ) -> CensysArchive:
        """The Censys-style scan archive over its availability window."""
        if self._censys is None:
            archive = CensysArchive(self.servers, seed=self.seed)
            for probe in probes:
                archive.run_schedule(probe, start=start, end=end, interval_days=interval_days)
            self._censys = archive
        return self._censys

    def scan(self, probe: str, interval_days: int = 56) -> CensysArchive:
        """One probe's scan schedule, cached per (probe, interval)."""
        key = (probe, interval_days)
        archive = self._scans.get(key)
        if archive is None:
            archive = CensysArchive(self.servers, seed=self.seed)
            archive.run_schedule(probe, interval_days=interval_days)
            self._scans[key] = archive
        return archive

    def pulse(self) -> SslPulse:
        """The SSL Pulse-style survey bound to this model's servers."""
        if self._pulse is None:
            self._pulse = SslPulse(self.servers)
        return self._pulse

    # ---- fingerprinting --------------------------------------------------------

    def database(self) -> FingerprintDatabase:
        """The fingerprint database harvested from the client substrate."""
        if self._database is None:
            self._database = build_default_database(self.clients)
        return self._database


_DEFAULT_MODEL: EcosystemModel | None = None


def default_model(
    workers: int | None = None,
    use_cache: bool | None = None,
    rebuild: bool = False,
    faults: str | None = None,
    resume: bool | None = None,
    scale: int | None = None,
) -> EcosystemModel:
    """A process-wide shared model, so benches and chained CLI commands
    reuse one simulation.

    The first call fixes the configuration; later calls return the same
    instance regardless of arguments (one dataset per process).
    """
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = EcosystemModel(
            workers=workers, use_cache=use_cache, rebuild=rebuild,
            faults=faults, resume=resume, scale=scale,
        )
    return _DEFAULT_MODEL
