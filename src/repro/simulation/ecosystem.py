"""The calibrated ecosystem model: one object that runs the whole study.

``EcosystemModel`` wires the client population, server population,
passive monitor and Censys archive together and exposes the datasets
every benchmark consumes.  Results are cached per instance, so a bench
module can share one model across all its experiments.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass, field

from repro.clients.population import ClientPopulation, default_population
from repro.core.database import FingerprintDatabase, build_default_database
from repro.notary.monitor import PassiveMonitor
from repro.notary.generator import TrafficGenerator
from repro.notary.store import NotaryStore
from repro.scanner.censys import CENSYS_FIRST_SCAN, CENSYS_LAST_SCAN, CensysArchive
from repro.servers.population import ServerPopulation

#: The Notary observation window (§3.1).
STUDY_START = _dt.date(2012, 1, 1)
STUDY_END = _dt.date(2018, 4, 1)


@dataclass
class EcosystemModel:
    """Client + server populations plus the two measurement pipelines."""

    start: _dt.date = STUDY_START
    end: _dt.date = STUDY_END
    seed: int = 7
    clients: ClientPopulation = field(default_factory=default_population)
    servers: ServerPopulation = field(default_factory=ServerPopulation)

    def __post_init__(self) -> None:
        self._passive_store: NotaryStore | None = None
        self._montecarlo_store: NotaryStore | None = None
        self._censys: CensysArchive | None = None
        self._database: FingerprintDatabase | None = None

    # ---- passive (Notary) ----------------------------------------------------

    def passive_store(self) -> NotaryStore:
        """The expectation-mode Notary dataset (cached)."""
        if self._passive_store is None:
            monitor = PassiveMonitor()
            generator = TrafficGenerator(self.clients, self.servers, monitor)
            generator.run_expectation(self.start, self.end)
            self._passive_store = monitor.store
        return self._passive_store

    def montecarlo_store(self, connections_per_month: int = 2000) -> NotaryStore:
        """A sampled, day-resolution Notary dataset (cached)."""
        if self._montecarlo_store is None:
            monitor = PassiveMonitor()
            generator = TrafficGenerator(self.clients, self.servers, monitor)
            generator.run_montecarlo(
                self.start,
                self.end,
                connections_per_month=connections_per_month,
                rng=random.Random(self.seed),
            )
            self._montecarlo_store = monitor.store
        return self._montecarlo_store

    # ---- active (Censys) ------------------------------------------------------

    def censys(
        self,
        probes: tuple[str, ...] = ("chrome2015", "ssl3", "export"),
        interval_days: int = 28,
        start: _dt.date = CENSYS_FIRST_SCAN,
        end: _dt.date = CENSYS_LAST_SCAN,
    ) -> CensysArchive:
        """The Censys-style scan archive over its availability window."""
        if self._censys is None:
            archive = CensysArchive(self.servers, seed=self.seed)
            for probe in probes:
                archive.run_schedule(probe, start=start, end=end, interval_days=interval_days)
            self._censys = archive
        return self._censys

    # ---- fingerprinting --------------------------------------------------------

    def database(self) -> FingerprintDatabase:
        """The fingerprint database harvested from the client substrate."""
        if self._database is None:
            self._database = build_default_database(self.clients)
        return self._database


_DEFAULT_MODEL: EcosystemModel | None = None


def default_model() -> EcosystemModel:
    """A process-wide shared model, so benches reuse one simulation."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = EcosystemModel()
    return _DEFAULT_MODEL
