"""Ecosystem model: attack timeline and the calibrated study driver."""

from repro.simulation.ecosystem import (
    STUDY_END,
    STUDY_START,
    EcosystemModel,
    default_model,
)
from repro.simulation.timeline import (
    ATTACK_TIMELINE,
    BROWSER_RC4_REMOVAL,
    Event,
    events_between,
)

__all__ = [
    "STUDY_END",
    "STUDY_START",
    "EcosystemModel",
    "default_model",
    "ATTACK_TIMELINE",
    "BROWSER_RC4_REMOVAL",
    "Event",
    "events_between",
]
