"""The calibration sheet: every tunable constant, with its paper anchor.

The simulation is driven by causes, not by the paper's output curves
(DESIGN.md §5).  This module collects the constants those causes use —
where each one lives, what it encodes, and which paper statement it was
tuned against — and exposes them as a single inspectable structure so
ablation studies and reviews can see the full knob surface at once.

Nothing here is imported by the model itself; the values are *read
from* the live objects, so this sheet can never drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CalibrationEntry:
    """One documented calibration constant."""

    name: str
    location: str
    value: str
    anchor: str  # the paper statement it was tuned against


def client_entries() -> list[CalibrationEntry]:
    """Adoption models and share-curve anchors on the client side."""
    from repro.clients.profile import (
        APP_ADOPTION,
        BROWSER_ADOPTION,
        OS_LIBRARY_ADOPTION,
        SERVERSIDE_TOOL_ADOPTION,
    )

    def fmt(model):
        return (
            f"fast={model.fast_days:g}d tail={model.tail:g} slow={model.slow_days:g}d"
        )

    return [
        CalibrationEntry(
            "BROWSER_ADOPTION",
            "repro.clients.profile",
            fmt(BROWSER_ADOPTION),
            "browsers auto-update within weeks but leave a years-long tail "
            "(§5.3: residual RC4 advertisement after removal)",
        ),
        CalibrationEntry(
            "OS_LIBRARY_ADOPTION",
            "repro.clients.profile",
            fmt(OS_LIBRARY_ADOPTION),
            "OS-tied stacks move with device replacement (§7.2: Android 2.3 "
            "devices still connecting in 2018)",
        ),
        CalibrationEntry(
            "SERVERSIDE_TOOL_ADOPTION",
            "repro.clients.profile",
            fmt(SERVERSIDE_TOOL_ADOPTION),
            "operator-managed tooling upgrades slowest (§4.1: fingerprints "
            "unchanged for >1,200 days)",
        ),
        CalibrationEntry(
            "APP_ADOPTION",
            "repro.clients.profile",
            fmt(APP_ADOPTION),
            "mobile apps sit between browsers and OS libraries",
        ),
        CalibrationEntry(
            "client share curves",
            "repro.clients.population.default_population",
            "piecewise-linear per family, normalized per month",
            "Table 2 coverage distribution (Libraries 46%, Browsers 16%, "
            "~31% unlabeled) and §5.5's 28.19% export advertisement in 2012",
        ),
        CalibrationEntry(
            "anon-SDK share spike",
            "repro.clients.population (Unidentified anon SDK curve)",
            "4.2 -> 11.5 -> 7.5 relative share around 2015-06",
            "§6.2: anon advertisement jumped 5.8% -> 12.9% in two months "
            "mid-2015, correlated with a NULL spike",
        ),
        CalibrationEntry(
            "TLS 1.3 rollout schedules",
            "repro.clients.chrome / firefox (tls13_schedule)",
            "flag-flip steps, e.g. Chrome 0.02 -> 0.45 (Mar) -> 0.97 (Apr)",
            "§6.4: advertisement 0.5% (Feb) -> 9.8% (Mar) -> 23.6% (Apr 2018)",
        ),
    ]


def server_entries() -> list[CalibrationEntry]:
    """Patch curves and share anchors on the server side."""
    from repro.servers.population import ServerAttributeCurves

    curves = ServerAttributeCurves()

    def patch(p):
        return (
            f"disclosed={p.disclosed} half-life={p.half_life_days:g}d "
            f"never={p.never_patched:g}"
        )

    return [
        CalibrationEntry(
            "ssl3_removal",
            "repro.servers.population.ServerAttributeCurves",
            patch(curves.ssl3_removal),
            "§5.1: SSL 3 support 45% (Sep 2015) -> <25% (May 2018), still "
            "'embarrassingly high'",
        ),
        CalibrationEntry(
            "heartbeat_support",
            "repro.servers.population.ServerAttributeCurves",
            f"logistic midpoint={curves.heartbeat_support.midpoint} "
            f"ceiling={curves.heartbeat_support.ceiling:g}",
            "§5.4: ~24% of hosts vulnerable at disclosure; 34% heartbeat "
            "support in May 2018",
        ),
        CalibrationEntry(
            "heartbleed_patch",
            "repro.servers.population.ServerAttributeCurves",
            patch(curves.heartbleed_patch),
            "§5.4: <2% vulnerable within a month; 0.32% in May 2018",
        ),
        CalibrationEntry(
            "rc4_tail_removal",
            "repro.servers.population.ServerAttributeCurves",
            patch(curves.rc4_tail_removal),
            "§5.3 (SSL Pulse): RC4 support 92.8% (Oct 2013) -> 19.1% (2018)",
        ),
        CalibrationEntry(
            "version intolerance",
            "repro.servers.population.ServerAttributeCurves",
            f"base={curves.intolerance_base:g}, fix {patch(curves.intolerance_fix)}",
            "the downgrade-dance enabler (§2.2 POODLE); fixed as TLS 1.2 "
            "rollout exposed broken stacks",
        ),
        CalibrationEntry(
            "traffic archetype shares",
            "repro.servers.population._TRAFFIC_SHARES",
            "piecewise-linear per archetype",
            "Figure 2 (RC4 negotiated ~60% Aug 2013), Figure 8 (post-Snowden "
            "ECDHE shift), Figure 1 (TLS 1.2 crossover 2014)",
        ),
        CalibrationEntry(
            "host archetype shares",
            "repro.servers.population._HOST_SHARES",
            "piecewise-linear per archetype",
            "§5.2/§5.3 Censys: RC4 chosen 11.2% -> 3.4%, CBC 54% -> 35%, "
            "3DES 0.54% -> 0.25%",
        ),
    ]


def all_entries() -> list[CalibrationEntry]:
    return client_entries() + server_entries()


def render_sheet() -> str:
    """The calibration sheet as readable text."""
    lines = ["CALIBRATION SHEET", "=" * 60]
    for entry in all_entries():
        lines.append("")
        lines.append(f"{entry.name}  [{entry.location}]")
        lines.append(f"  value : {entry.value}")
        lines.append(f"  anchor: {entry.anchor}")
    return "\n".join(lines) + "\n"
