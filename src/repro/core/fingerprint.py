"""TLS client fingerprint extraction (§4).

A fingerprint is the concatenation of four Client Hello features —
(i) the cipher-suite list, (ii) the client extension list, (iii) the
supported elliptic curves, and (iv) the EC point formats — in wire
order, with GREASE values identified and removed.  The digest is an
MD5 over the canonical string form, in the JA3 tradition (the paper's
feature set is JA3's minus the client version, which the Notary did not
record).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.notary.events import FingerprintFields
from repro.tls.grease import strip_grease
from repro.tls.messages import ClientHello


@dataclass(frozen=True)
class Fingerprint:
    """A GREASE-stripped four-field client fingerprint."""

    fields: FingerprintFields

    @classmethod
    def from_client_hello(cls, hello: ClientHello) -> "Fingerprint":
        return cls(fields=FingerprintFields.from_hello(hello))

    @classmethod
    def from_fields(cls, fields: FingerprintFields) -> "Fingerprint":
        return cls(fields=fields)

    @classmethod
    def from_raw(
        cls,
        cipher_suites,
        extensions,
        curves=(),
        ec_point_formats=(),
    ) -> "Fingerprint":
        """Build a fingerprint from raw wire values (GREASE stripped here)."""
        return cls(
            FingerprintFields(
                cipher_suites=strip_grease(cipher_suites),
                extensions=strip_grease(extensions),
                curves=strip_grease(curves),
                ec_point_formats=tuple(ec_point_formats),
            )
        )

    @property
    def canonical(self) -> str:
        """Canonical string form: four comma-joined dash-separated lists."""
        f = self.fields
        return ",".join(
            "-".join(str(v) for v in part)
            for part in (f.cipher_suites, f.extensions, f.curves, f.ec_point_formats)
        )

    @property
    def digest(self) -> str:
        """MD5 hex digest of the canonical form."""
        return hashlib.md5(self.canonical.encode("ascii")).hexdigest()

    def advertises(self, predicate) -> bool:
        """True if any fingerprinted suite satisfies ``predicate``.

        Drives Figure 4, where support is counted per distinct
        fingerprint rather than per connection.
        """
        from repro.tls.ciphers import REGISTRY

        return any(
            predicate(REGISTRY[code])
            for code in self.fields.cipher_suites
            if code in REGISTRY and not REGISTRY[code].scsv
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.digest


def extract(hello: ClientHello) -> Fingerprint:
    """Extract the fingerprint of a Client Hello."""
    return Fingerprint.from_client_hello(hello)


@dataclass(frozen=True)
class ExtendedFingerprint:
    """The richer fingerprint of prior work (§4's methodology note).

    Brotherston-style fingerprints additionally include the client TLS
    version and the compression methods — fields the Notary did not
    record, which is why the paper's fingerprints are slightly less
    distinct (collisions rise from 2.4% to 7.3% when its restricted
    field set is applied to the corpus of [22]).  This class exists to
    reproduce that comparison.
    """

    base: Fingerprint
    legacy_version: int
    compression_methods: tuple[int, ...]

    @classmethod
    def from_client_hello(cls, hello: ClientHello) -> "ExtendedFingerprint":
        return cls(
            base=Fingerprint.from_client_hello(hello),
            legacy_version=hello.legacy_version,
            compression_methods=tuple(hello.compression_methods),
        )

    @property
    def canonical(self) -> str:
        compression = "-".join(str(v) for v in self.compression_methods)
        return f"{self.legacy_version},{self.base.canonical},{compression}"

    @property
    def digest(self) -> str:
        return hashlib.md5(self.canonical.encode("ascii")).hexdigest()


def collision_rate(hellos) -> tuple[float, float]:
    """Collision rates of the restricted vs extended methodologies.

    Given distinct client configurations' hellos, returns the fraction
    of configurations whose fingerprint collides with another one under
    (restricted 4-field, extended) extraction.  Restricted >= extended
    by construction — the §4 effect.
    """
    hellos = list(hellos)

    def rate(digests: list[str]) -> float:
        from collections import Counter

        counts = Counter(digests)
        colliding = sum(n for n in counts.values() if n > 1)
        return colliding / len(digests) if digests else 0.0

    restricted = rate([Fingerprint.from_client_hello(h).digest for h in hellos])
    extended = rate([ExtendedFingerprint.from_client_hello(h).digest for h in hellos])
    return restricted, extended
