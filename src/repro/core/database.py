"""The fingerprint database and its collision rules (§4).

Each fingerprint maps to a program or library plus a version range.
The paper's collision policy is implemented exactly:

* a collision between two *different kinds of software* removes the
  fingerprint — it cannot uniquely identify a client;
* a collision between a specific software and a *library* resolves to
  the library ("we assume that the software uses the library" — which
  is why Chrome on Android is identified as "Android SDK").

The default database is harvested from the client-profile substrate the
way the paper harvested from BrowserStack and compiled OpenSSL builds:
by making each known release emit its hellos and fingerprinting them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.clients.population import ClientPopulation
from repro.clients.profile import ClientRelease
from repro.core.fingerprint import Fingerprint
from repro.notary.events import FingerprintFields


@dataclass(frozen=True)
class FingerprintLabel:
    """What a fingerprint identifies."""

    software: str
    version_range: str
    category: str
    library: str | None = None

    def describes_library(self) -> bool:
        """True if this label names a TLS library rather than a program."""
        from repro.clients.profile import CATEGORY_LIBRARIES

        return self.category == CATEGORY_LIBRARIES


class FingerprintDatabase:
    """Fingerprint -> label mapping with the paper's collision rules."""

    def __init__(self) -> None:
        self._labels: dict[str, FingerprintLabel] = {}
        self._fingerprints: dict[str, Fingerprint] = {}
        self._removed: set[str] = set()

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint.digest in self._labels

    def labels(self) -> dict[str, FingerprintLabel]:
        """Digest -> label view (copy)."""
        return dict(self._labels)

    def fingerprints(self) -> list[Fingerprint]:
        return list(self._fingerprints.values())

    def add(self, fingerprint: Fingerprint, label: FingerprintLabel) -> bool:
        """Insert with collision resolution; returns True if retained."""
        digest = fingerprint.digest
        if digest in self._removed:
            return False
        existing = self._labels.get(digest)
        if existing is None:
            self._labels[digest] = label
            self._fingerprints[digest] = fingerprint
            return True
        if existing.software == label.software:
            # Same software, wider version range: merge the range labels.
            if existing.version_range != label.version_range:
                merged = FingerprintLabel(
                    software=existing.software,
                    version_range=f"{existing.version_range}, {label.version_range}",
                    category=existing.category,
                    library=existing.library,
                )
                self._labels[digest] = merged
            return True
        # Software/library collision: the library label wins.
        if existing.describes_library() and not label.describes_library():
            return True
        if label.describes_library() and not existing.describes_library():
            self._labels[digest] = label
            return True
        # Two different kinds of software: remove the fingerprint.
        del self._labels[digest]
        del self._fingerprints[digest]
        self._removed.add(digest)
        return False

    def match(self, fields: FingerprintFields | Fingerprint) -> FingerprintLabel | None:
        """Label for observed fingerprint fields, or None if unknown."""
        fingerprint = (
            fields if isinstance(fields, Fingerprint) else Fingerprint.from_fields(fields)
        )
        return self._labels.get(fingerprint.digest)

    # ---- summaries ----------------------------------------------------------

    def count_by_category(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for label in self._labels.values():
            counts[label.category] = counts.get(label.category, 0) + 1
        return counts

    def coverage(self, records) -> dict[str, float]:
        """Weighted coverage per category over records with fingerprints.

        Returns category -> fraction of fingerprintable connection weight
        attributed to that category, plus ``"All"`` for the total — the
        shape of Table 2's coverage column.
        """
        total = 0.0
        matched: dict[str, float] = {}
        for record in records:
            if record.fingerprint is None:
                continue
            total += record.weight
            label = self.match(record.fingerprint)
            if label is not None:
                matched[label.category] = matched.get(label.category, 0.0) + record.weight
        if total <= 0:
            return {"All": 0.0}
        out = {category: weight / total for category, weight in matched.items()}
        out["All"] = sum(matched.values()) / total
        return out


def _release_label(release: ClientRelease) -> FingerprintLabel:
    software = release.library if release.library == release.family else release.family
    return FingerprintLabel(
        software=release.family,
        version_range=release.version,
        category=release.category,
        library=release.library,
    )


def harvest_release(release: ClientRelease, db: FingerprintDatabase) -> int:
    """Fingerprint every hello variant a release emits; returns #added.

    GREASE-ing clients emit random values per connection, but stripping
    makes the fingerprint stable, so a single build per TLS 1.3 variant
    suffices.  Shuffling clients are deliberately *not* harvestable —
    their fingerprints are unstable by construction (§4.1).
    """
    if release.shuffle_suites or not release.in_database:
        return 0
    added = 0
    variants = [False, True] if release.supported_versions else [False]
    for tls13 in variants:
        rng = random.Random(0xFDB)
        hello = release.build_hello(rng=rng, include_tls13=tls13)
        fingerprint = Fingerprint.from_client_hello(hello)
        if db.add(fingerprint, _release_label(release)):
            added += 1
    return added


def build_default_database(
    population: ClientPopulation | None = None,
) -> FingerprintDatabase:
    """Harvest the default population into a database."""
    if population is None:
        from repro.clients.population import default_population

        population = default_population()
    db = FingerprintDatabase()
    for family in population.families():
        for release in family.releases:
            harvest_release(release, db)
    return db
