"""One-shot study report: every headline number in a single text blob.

``build_report`` runs (or reuses) an :class:`EcosystemModel` and renders
the paper's §1/§7 summary statements with measured values — the "state
of the ecosystem" narrative, regenerated from simulation.  The CLI's
``report`` command and the docs pipeline both consume this.
"""

from __future__ import annotations

import datetime as _dt
import io

from repro.core import figures
from repro.simulation.ecosystem import EcosystemModel
from repro.simulation.timeline import ATTACK_TIMELINE
from repro.tls.ciphers import KexFamily


def build_report(model: EcosystemModel | None = None) -> str:
    """Render the end-to-end study summary as plain text."""
    model = model if model is not None else EcosystemModel()
    store = model.passive_store()
    out = io.StringIO()
    w = out.write

    est = lambda r: r.established  # noqa: E731

    def pct(month: str, predicate, within=est) -> float:
        return store.fraction(_dt.date.fromisoformat(month), predicate, within) * 100

    w("TLS ECOSYSTEM LONGITUDINAL REPORT (simulated Notary, 2012-2018)\n")
    w("=" * 66 + "\n\n")

    w("Protocol versions (§1, Figure 1)\n")
    w(
        f"  2012: TLS 1.0 carries {pct('2012-02-01', lambda r: r.negotiated_version == 'TLSv10'):.0f}% "
        "of connections\n"
    )
    w(
        f"  2018: TLS 1.2 carries {pct('2018-02-01', lambda r: r.negotiated_version == 'TLSv12'):.0f}%, "
        f"TLS 1.0 down to {pct('2018-02-01', lambda r: r.negotiated_version == 'TLSv10'):.1f}%\n"
    )
    w(
        f"  TLS 1.3 (pre-RFC): advertised by {pct('2018-04-01', lambda r: r.offered_tls13, None):.1f}% "
        f"in Apr 2018, negotiated in {pct('2018-04-01', lambda r: r.negotiated_version == 'TLSv13'):.2f}%\n\n"
    )

    w("Cipher classes (Figures 2, 3)\n")
    w(
        f"  RC4 negotiated: {pct('2013-08-01', lambda r: r.negotiated_mode_class == 'RC4'):.0f}% "
        f"(Aug 2013) -> {pct('2018-03-01', lambda r: r.negotiated_mode_class == 'RC4'):.2f}% (Mar 2018)\n"
    )
    w(
        f"  AEAD negotiated: {pct('2013-08-01', lambda r: r.negotiated_mode_class == 'AEAD'):.1f}% "
        f"(Aug 2013) -> {pct('2018-03-01', lambda r: r.negotiated_mode_class == 'AEAD'):.0f}% (Mar 2018)\n"
    )
    w(
        f"  3DES still advertised by {pct('2018-03-01', lambda r: r.advertises('3des'), None):.0f}% "
        "of clients in 2018 (the cipher of last resort)\n\n"
    )

    w("Forward secrecy (Figure 8, §6.3.1)\n")
    rsa = pct("2012-06-01", lambda r: r.negotiated_kex == KexFamily.RSA)
    ecdhe = pct("2018-03-01", lambda r: r.negotiated_kex == KexFamily.ECDHE)
    w(f"  RSA key transport: {rsa:.0f}% of 2012 connections\n")
    w(f"  ECDHE: {ecdhe:.0f}% of 2018 connections\n")
    x25519 = pct(
        "2018-02-01",
        lambda r: r.negotiated_curve == 29,
        lambda r: r.established and r.negotiated_curve is not None,
    )
    w(f"  x25519: {x25519:.0f}% of curve-based connections in Feb 2018\n\n")

    w("Weak options (Figure 7, §5.5, §6.1, §6.2)\n")
    w(
        f"  export advertised: {pct('2012-02-01', lambda r: r.advertises('export'), None):.1f}% (2012) "
        f"-> {pct('2018-02-01', lambda r: r.advertises('export'), None):.1f}% (2018)\n"
    )
    w(
        f"  NULL negotiated 2018: {pct('2018-02-01', lambda r: r.suite is not None and r.suite.is_null_encryption):.2f}% "
        "(GRID data movement)\n"
    )
    w(
        f"  anonymous negotiated 2018: {pct('2018-02-01', lambda r: r.suite is not None and r.suite.is_anonymous and not r.suite.is_null_null):.2f}% "
        "(Nagios probes)\n\n"
    )

    w("Attack timeline\n")
    for event in ATTACK_TIMELINE:
        w(f"  {event.date}  {event.name}\n")
    w("\n")

    db = model.database()
    records = [r for r in store.records() if r.fingerprint is not None]
    coverage = db.coverage(records)
    w("Fingerprinting (§4)\n")
    w(f"  database size: {len(db)} labelled fingerprints\n")
    w(f"  coverage of fingerprintable connections: {coverage['All'] * 100:.1f}%\n")
    top = sorted(
        ((c, v) for c, v in coverage.items() if c != "All"),
        key=lambda kv: -kv[1],
    )[:3]
    w(
        "  top categories: "
        + ", ".join(f"{c} {v * 100:.1f}%" for c, v in top)
        + "\n"
    )
    return out.getvalue()
