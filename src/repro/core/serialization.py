"""Fingerprint-database (de)serialization.

The paper released its fingerprint corpus as a public repository
(github.com/platonK/tls_fingerprints); this module provides the
equivalent interchange format — a JSON document mapping each
fingerprint's canonical form to its label — so databases can be
shipped, diffed and merged independently of the client substrate that
generated them.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.database import FingerprintDatabase, FingerprintLabel
from repro.core.fingerprint import Fingerprint

FORMAT_VERSION = 1


def _fingerprint_to_json(fp: Fingerprint) -> dict:
    return {
        "cipher_suites": list(fp.fields.cipher_suites),
        "extensions": list(fp.fields.extensions),
        "curves": list(fp.fields.curves),
        "ec_point_formats": list(fp.fields.ec_point_formats),
    }


def _fingerprint_from_json(data: dict) -> Fingerprint:
    return Fingerprint.from_raw(
        cipher_suites=data["cipher_suites"],
        extensions=data["extensions"],
        curves=data.get("curves", ()),
        ec_point_formats=data.get("ec_point_formats", ()),
    )


def dumps(db: FingerprintDatabase) -> str:
    """Serialize a database to a JSON string (digest-sorted, stable)."""
    labels = db.labels()
    fingerprints = {fp.digest: fp for fp in db.fingerprints()}
    entries = []
    for digest in sorted(labels):
        label = labels[digest]
        entries.append(
            {
                "digest": digest,
                "fingerprint": _fingerprint_to_json(fingerprints[digest]),
                "software": label.software,
                "version_range": label.version_range,
                "category": label.category,
                "library": label.library,
            }
        )
    return json.dumps(
        {"format_version": FORMAT_VERSION, "fingerprints": entries}, indent=2
    )


def loads(text: str) -> FingerprintDatabase:
    """Parse a database from its JSON form.

    Collision rules apply on load, so merging two dumps by
    concatenating their entry lists behaves exactly like harvesting
    from both sources.
    """
    document = json.loads(text)
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported fingerprint-db format version: {version!r}")
    db = FingerprintDatabase()
    for entry in document["fingerprints"]:
        fingerprint = _fingerprint_from_json(entry["fingerprint"])
        if entry["digest"] != fingerprint.digest:
            raise ValueError(
                f"digest mismatch for {entry['software']}: "
                f"{entry['digest']} != {fingerprint.digest}"
            )
        label = FingerprintLabel(
            software=entry["software"],
            version_range=entry["version_range"],
            category=entry["category"],
            library=entry.get("library"),
        )
        db.add(fingerprint, label)
    return db


def save(db: FingerprintDatabase, path: str | Path) -> None:
    """Write a database to a JSON file."""
    Path(path).write_text(dumps(db), encoding="utf-8")


def load(path: str | Path) -> FingerprintDatabase:
    """Read a database from a JSON file."""
    return loads(Path(path).read_text(encoding="utf-8"))
