"""Change-point detection: correlating series shifts with the timeline.

The paper's contribution (i) is correlating ecosystem changes "with the
timing of specific attacks on TLS".  This module makes the correlation
mechanical: find where a monthly series accelerates hardest, and match
that against the §2.2 event timeline.

The detector is deliberately simple and transparent — a smoothed
second-difference (curvature) extremum — because the series are monthly
and low-noise; heavier machinery would obscure what is being claimed.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

try:  # numpy is the optional ``fast`` extra, not a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None

from repro.simulation.timeline import Event

Series = list[tuple[_dt.date, float]]


def _smooth(values: list[float], window: int) -> list[float]:
    """Centered moving average, zero-padded at the boundaries.

    Matches ``np.convolve(values, ones(window)/window, mode="same")``:
    output ``i`` averages the window centered (right-biased for even
    widths) on ``i``, with out-of-range taps contributing zero.
    """
    if window <= 1:
        return list(values)
    if np is not None:
        kernel = np.ones(window) / window
        return list(np.convolve(np.array(values, dtype=float), kernel, mode="same"))
    n = len(values)
    inv = 1.0 / window
    out = []
    for i in range(n):
        m = i + (window - 1) // 2
        acc = 0.0
        for j in range(max(0, m - window + 1), min(m, n - 1) + 1):
            acc += values[j] * inv
        out.append(acc)
    return out


def _diff2(values: list[float]) -> list[float]:
    """Second differences as repeated first differences (= ``np.diff``
    with ``n=2``: the same subtraction tree, so the same floats)."""
    first = [b - a for a, b in zip(values, values[1:])]
    return [b - a for a, b in zip(first, first[1:])]


@dataclass(frozen=True)
class ChangePoint:
    """The strongest acceleration (or deceleration) of a series."""

    month: _dt.date
    curvature: float     # signed second difference at the point
    direction: str       # "acceleration" | "deceleration"


def detect_changepoint(
    series: Series,
    smooth_window: int = 3,
    rising: bool | None = None,
) -> ChangePoint:
    """The month where the series' slope changes the most.

    Args:
        series: Monthly (date, value) points, ordered.
        smooth_window: Moving-average width applied before
            differentiating (noise control).
        rising: If True, only look for upward accelerations (slope
            increasing); if False, only downward; None takes the
            largest in magnitude.
    """
    if len(series) < 5:
        raise ValueError("need at least 5 points to detect a change point")
    dates = [d for d, _ in series]
    values = _smooth([v for _, v in series], smooth_window)
    curvature = _diff2(values)  # index i -> month i+1
    # The moving average zero-pads at the boundaries, which manufactures
    # spurious curvature there; restrict the search to the interior.
    margin = max(smooth_window - 1, 0)
    interior = curvature[margin : len(curvature) - margin or None]
    if len(interior) == 0:
        raise ValueError("series too short for the requested smoothing")
    # First-extremum ties, like np.argmax/argmin would pick.
    indices = range(len(interior))
    if rising is True:
        local = max(indices, key=interior.__getitem__)
    elif rising is False:
        local = min(indices, key=interior.__getitem__)
    else:
        local = max(indices, key=lambda i: abs(interior[i]))
    index = local + margin
    value = float(curvature[index])
    return ChangePoint(
        month=dates[index + 1],
        curvature=value,
        direction="acceleration" if value > 0 else "deceleration",
    )


@dataclass(frozen=True)
class EventCorrelation:
    """A change point matched against the nearest timeline event."""

    changepoint: ChangePoint
    event: Event
    lag_days: int  # positive: change after the event

    @property
    def within_months(self) -> float:
        return abs(self.lag_days) / 30.44


def correlate_with_events(
    series: Series,
    events,
    smooth_window: int = 3,
    rising: bool | None = None,
) -> EventCorrelation:
    """Detect the series' change point and name the nearest event.

    Correlation in time is not causality (§6.3.1 makes the same caveat
    for Snowden); the result reports the lag so the caller can judge.
    """
    changepoint = detect_changepoint(series, smooth_window, rising)
    nearest = min(events, key=lambda e: abs((changepoint.month - e.date).days))
    return EventCorrelation(
        changepoint=changepoint,
        event=nearest,
        lag_days=(changepoint.month - nearest.date).days,
    )
