"""Change-point detection: correlating series shifts with the timeline.

The paper's contribution (i) is correlating ecosystem changes "with the
timing of specific attacks on TLS".  This module makes the correlation
mechanical: find where a monthly series accelerates hardest, and match
that against the §2.2 event timeline.

The detector is deliberately simple and transparent — a smoothed
second-difference (curvature) extremum — because the series are monthly
and low-noise; heavier machinery would obscure what is being claimed.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

import numpy as np

from repro.simulation.timeline import Event

Series = list[tuple[_dt.date, float]]


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    if window <= 1:
        return values
    kernel = np.ones(window) / window
    return np.convolve(values, kernel, mode="same")


@dataclass(frozen=True)
class ChangePoint:
    """The strongest acceleration (or deceleration) of a series."""

    month: _dt.date
    curvature: float     # signed second difference at the point
    direction: str       # "acceleration" | "deceleration"


def detect_changepoint(
    series: Series,
    smooth_window: int = 3,
    rising: bool | None = None,
) -> ChangePoint:
    """The month where the series' slope changes the most.

    Args:
        series: Monthly (date, value) points, ordered.
        smooth_window: Moving-average width applied before
            differentiating (noise control).
        rising: If True, only look for upward accelerations (slope
            increasing); if False, only downward; None takes the
            largest in magnitude.
    """
    if len(series) < 5:
        raise ValueError("need at least 5 points to detect a change point")
    dates = [d for d, _ in series]
    values = _smooth(np.array([v for _, v in series], dtype=float), smooth_window)
    curvature = np.diff(values, n=2)  # index i -> month i+1
    # The moving average zero-pads at the boundaries, which manufactures
    # spurious curvature there; restrict the search to the interior.
    margin = max(smooth_window - 1, 0)
    interior = curvature[margin : len(curvature) - margin or None]
    if len(interior) == 0:
        raise ValueError("series too short for the requested smoothing")
    if rising is True:
        local = int(np.argmax(interior))
    elif rising is False:
        local = int(np.argmin(interior))
    else:
        local = int(np.argmax(np.abs(interior)))
    index = local + margin
    value = float(curvature[index])
    return ChangePoint(
        month=dates[index + 1],
        curvature=value,
        direction="acceleration" if value > 0 else "deceleration",
    )


@dataclass(frozen=True)
class EventCorrelation:
    """A change point matched against the nearest timeline event."""

    changepoint: ChangePoint
    event: Event
    lag_days: int  # positive: change after the event

    @property
    def within_months(self) -> float:
        return abs(self.lag_days) / 30.44


def correlate_with_events(
    series: Series,
    events,
    smooth_window: int = 3,
    rising: bool | None = None,
) -> EventCorrelation:
    """Detect the series' change point and name the nearest event.

    Correlation in time is not causality (§6.3.1 makes the same caveat
    for Snowden); the result reports the lag so the caller can judge.
    """
    changepoint = detect_changepoint(series, smooth_window, rising)
    nearest = min(events, key=lambda e: abs((changepoint.month - e.date).days))
    return EventCorrelation(
        changepoint=changepoint,
        event=nearest,
        lag_days=(changepoint.month - nearest.date).days,
    )
