"""Core contribution: TLS client fingerprinting and longitudinal analysis."""

from repro.core.attacks import (
    EXPOSURE_PREDICATES,
    Reaction,
    exposure_series,
    reaction_report,
)
from repro.core.database import (
    FingerprintDatabase,
    FingerprintLabel,
    build_default_database,
    harvest_release,
)
from repro.core.fingerprint import Fingerprint, extract
from repro.core.stats import (
    DurationSummary,
    duration_summary,
    fingerprint_lifetimes,
    long_lived_software,
    most_common_unlabeled_share,
    top_fingerprint_concentration,
)

__all__ = [
    "EXPOSURE_PREDICATES",
    "Reaction",
    "exposure_series",
    "reaction_report",
    "FingerprintDatabase",
    "FingerprintLabel",
    "build_default_database",
    "harvest_release",
    "Fingerprint",
    "extract",
    "DurationSummary",
    "duration_summary",
    "fingerprint_lifetimes",
    "long_lived_software",
    "most_common_unlabeled_share",
    "top_fingerprint_concentration",
]
