"""Extension-deployment analysis — the §9 outlook items.

The paper's conclusion names two analyses its datasets support beyond
the published figures: the response to the renegotiation attack via the
renegotiation-info extension (RIE, RFC 5746) and the "very limited take
up" of Encrypt-then-MAC (RFC 7366) as the Lucky 13 countermeasure.
Both reduce to the same primitive: the monthly fraction of connections
where an extension is offered, and where it is actually negotiated
(offered and acknowledged).
"""

from __future__ import annotations

import datetime as _dt

from repro.notary.store import NotaryStore
from repro.tls.extensions import ExtensionType


def offered_series(
    store: NotaryStore, ext_type: int
) -> list[tuple[_dt.date, float]]:
    """Monthly % of connections whose client offered an extension."""
    code = int(ext_type)
    return [
        (month, value * 100.0)
        for month, value in store.monthly_fraction(
            lambda r: r.offers_extension(code)
        )
    ]


def negotiated_series(
    store: NotaryStore, ext_type: int
) -> list[tuple[_dt.date, float]]:
    """Monthly % of established connections that negotiated an extension."""
    code = int(ext_type)
    return [
        (month, value * 100.0)
        for month, value in store.monthly_fraction(
            lambda r: r.negotiated_extension(code),
            within=lambda r: r.established,
        )
    ]


def rie_deployment(store: NotaryStore) -> dict[str, list[tuple[_dt.date, float]]]:
    """Renegotiation-info extension deployment (§9)."""
    return {
        "RIE offered": offered_series(store, ExtensionType.RENEGOTIATION_INFO),
        "RIE negotiated": negotiated_series(store, ExtensionType.RENEGOTIATION_INFO),
    }


def encrypt_then_mac_uptake(
    store: NotaryStore,
) -> dict[str, list[tuple[_dt.date, float]]]:
    """Encrypt-then-MAC uptake (§9: "very limited take up")."""
    return {
        "EtM offered": offered_series(store, ExtensionType.ENCRYPT_THEN_MAC),
        "EtM negotiated": negotiated_series(store, ExtensionType.ENCRYPT_THEN_MAC),
    }


def extension_popularity(
    store: NotaryStore, month: _dt.date, top: int = 12
) -> list[tuple[str, float]]:
    """The most-offered extensions in a month, as (name, %) pairs."""
    weights: dict[int, float] = {}
    total = 0.0
    for record in store.records(month):
        total += record.weight
        for ext in set(record.client_extensions):
            weights[ext] = weights.get(ext, 0.0) + record.weight
    if total <= 0:
        return []
    from repro.tls.extensions import Extension

    ranked = sorted(weights.items(), key=lambda kv: -kv[1])[:top]
    return [(Extension(code).name, weight / total * 100.0) for code, weight in ranked]
