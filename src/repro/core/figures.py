"""Series generators for every figure in the paper's evaluation.

Each function takes a populated :class:`repro.notary.store.NotaryStore`
(and, where needed, active-scan data) and returns the figure's series as
``{label: [(month, percent), ...]}`` — the same rows a plotting script
would consume.  Established connections form the denominator of the
"negotiated" figures; all connections form the denominator of the
"advertised" figures, exactly as in the paper.

Every generator accepts an optional ``months`` list so batch callers
compute the store's sorted month list once; :func:`evaluate_all`
answers all ten figures that way.  On packed months the store resolves
each series through its shape-compiled tier (predicates evaluated once
per distinct record shape, memoized per dataset), and the fingerprint
and TLS 1.3 helpers below use the same shape access directly — so the
whole batch costs one pass over each month's shapes rather than ten
record scans.  All fast paths are float-identical to the record scans
they replace and silently fall back to records when a month is not
packed.
"""

from __future__ import annotations

import datetime as _dt
from collections import defaultdict

from repro.notary.query import (
    ESTABLISHED,
    Advertises,
    NegotiatedAead,
    NegotiatedKex,
    NegotiatedMode,
    NegotiatedVersion,
    PositionOf,
)
from repro.notary.store import NotaryStore
from repro.tls.ciphers import KexFamily

Series = dict[str, list[tuple[_dt.date, float]]]

# Indexed predicate: behaves like ``lambda r: r.established`` but lets
# the store answer the standard figure queries from its aggregate index.
_ESTABLISHED = ESTABLISHED


def _pct(series):
    return [(m, v * 100.0) for m, v in series]


def fig1_negotiated_versions(store: NotaryStore, months=None) -> Series:
    """Figure 1: negotiated SSL/TLS versions, percent of monthly connections."""
    if months is None:
        months = store.months()
    out: Series = {}
    for name in ("SSLv2", "SSLv3", "TLSv10", "TLSv11", "TLSv12", "TLSv13"):
        out[name] = _pct(
            store.monthly_fraction(NegotiatedVersion(name), _ESTABLISHED, months)
        )
    return out


def fig2_negotiated_modes(store: NotaryStore, months=None) -> Series:
    """Figure 2: connections negotiating RC4, CBC, or AEAD suites."""
    if months is None:
        months = store.months()
    out: Series = {}
    for mode in ("AEAD", "CBC", "RC4"):
        out[mode] = _pct(
            store.monthly_fraction(NegotiatedMode(mode), _ESTABLISHED, months)
        )
    return out


def fig3_advertised_modes(store: NotaryStore, months=None) -> Series:
    """Figure 3: clients advertising RC4, DES, 3DES, AEAD (CBC > 99%)."""
    if months is None:
        months = store.months()
    out: Series = {}
    for label, tag in (("AEAD", "aead"), ("RC4", "rc4"), ("DES", "des"), ("3DES", "3des"), ("CBC", "cbc")):
        out[label] = _pct(store.monthly_fraction(Advertises(tag), months=months))
    return out


def _month_fingerprints(store: NotaryStore, month: _dt.date) -> dict:
    """``{fingerprint: advertised}`` for one month, last record wins.

    Shape fast path: fingerprint and advertised are shape fields, so
    walking the month's shapes in *last-occurrence* order performs the
    same last-wins dict fold the record scan would — each fingerprint
    ends up with the advertised set of its last record.  Falls back to
    the record scan when the month is not packed.
    """
    seen: dict[tuple, frozenset] = {}
    templates = store.shape_templates(month, order="last")
    if templates is not None:
        for record in templates:
            if record.fingerprint is None:
                continue
            seen[record.fingerprint] = record.advertised
        return seen
    for record in store.records(month):
        if record.fingerprint is None:
            continue
        seen[record.fingerprint] = record.advertised
    return seen


def fig4_fingerprint_support(store: NotaryStore, months=None) -> Series:
    """Figure 4: support per distinct monthly fingerprint (not traffic-weighted).

    Only months with fingerprint fields (>= Feb 2014) produce points.
    """
    if months is None:
        months = store.months()
    out: Series = {label: [] for label in ("AEAD", "RC4", "DES", "3DES", "CBC")}
    tag_of = {"AEAD": "aead", "RC4": "rc4", "DES": "des", "3DES": "3des", "CBC": "cbc"}
    for month in months:
        seen = _month_fingerprints(store, month)
        if not seen:
            continue
        for label, tag in tag_of.items():
            count = sum(1 for advertised in seen.values() if tag in advertised)
            out[label].append((month, 100.0 * count / len(seen)))
    return {k: v for k, v in out.items() if v}


def fig5_cipher_positions(store: NotaryStore, months=None) -> Series:
    """Figure 5: average relative position of the first suite per class."""
    if months is None:
        months = store.months()
    out: Series = {}
    for label, tag in (("AEAD", "aead"), ("CBC", "cbc"), ("RC4", "rc4"), ("DES", "des"), ("3DES", "3des")):
        value = PositionOf(tag)
        series = []
        for month in months:
            mean = store.weighted_mean(month, value)
            if mean is not None:
                series.append((month, mean * 100.0))
        if series:
            out[label] = series
    return out


def fig6_rc4_advertised(store: NotaryStore, months=None) -> Series:
    """Figure 6: percent of connections advertising RC4 suites."""
    return {
        "RC4 advertised": _pct(
            store.monthly_fraction(Advertises("rc4"), months=months)
        )
    }


def fig7_weak_advertised(store: NotaryStore, months=None) -> Series:
    """Figure 7: clients advertising Export, NULL, or Anonymous suites."""
    if months is None:
        months = store.months()
    return {
        "Export": _pct(store.monthly_fraction(Advertises("export"), months=months)),
        "Anonymous": _pct(store.monthly_fraction(Advertises("anon"), months=months)),
        "Null": _pct(store.monthly_fraction(Advertises("null"), months=months)),
    }


def fig8_key_exchange(store: NotaryStore, months=None) -> Series:
    """Figure 8: negotiated RSA vs DHE vs ECDHE key exchange."""
    if months is None:
        months = store.months()
    out: Series = {}
    for label, family in (("RSA", KexFamily.RSA), ("DHE", KexFamily.DHE), ("ECDHE", KexFamily.ECDHE)):
        out[label] = _pct(
            store.monthly_fraction(NegotiatedKex(family), _ESTABLISHED, months)
        )
    return out


def fig9_negotiated_aead(store: NotaryStore, months=None) -> Series:
    """Figure 9: negotiated AEAD breakdown plus the AEAD total."""
    if months is None:
        months = store.months()
    out: Series = {
        "AEAD Total": _pct(
            store.monthly_fraction(NegotiatedMode("AEAD"), _ESTABLISHED, months)
        )
    }
    for label in ("AES128-GCM", "AES256-GCM", "ChaCha20-Poly1305"):
        out[label] = _pct(
            store.monthly_fraction(NegotiatedAead(label), _ESTABLISHED, months)
        )
    return out


def fig10_advertised_aead(store: NotaryStore, months=None) -> Series:
    """Figure 10: clients advertising AES-GCM, ChaCha20-Poly1305, AES-CCM."""
    if months is None:
        months = store.months()
    return {
        "AES128-GCM": _pct(store.monthly_fraction(Advertises("aes128gcm"), months=months)),
        "AES256-GCM": _pct(store.monthly_fraction(Advertises("aes256gcm"), months=months)),
        "ChaCha20-Poly1305": _pct(store.monthly_fraction(Advertises("chacha20"), months=months)),
        "AES-CCM": _pct(store.monthly_fraction(Advertises("aesccm"), months=months)),
    }


#: Every paper figure, in order, for batch evaluation and tests.
FIGURE_GENERATORS = {
    "fig1": fig1_negotiated_versions,
    "fig2": fig2_negotiated_modes,
    "fig3": fig3_advertised_modes,
    "fig4": fig4_fingerprint_support,
    "fig5": fig5_cipher_positions,
    "fig6": fig6_rc4_advertised,
    "fig7": fig7_weak_advertised,
    "fig8": fig8_key_exchange,
    "fig9": fig9_negotiated_aead,
    "fig10": fig10_advertised_aead,
}


def evaluate_all(store: NotaryStore) -> dict[str, Series]:
    """All ten figure series in one batch: ``{"fig1": ..., "fig10": ...}``.

    The sorted month list is computed once and shared, and on packed
    months the store's shape tier memoizes each predicate's per-shape
    verdicts across the whole batch — so the batch costs one evaluation
    per (predicate, shape) plus the column folds, not ten record scans
    per month.  Results are identical to calling each generator alone.
    """
    months = store.months()
    return {name: fig(store, months=months) for name, fig in FIGURE_GENERATORS.items()}


def _tls13_wire_label(wire: int) -> str:
    if (wire & 0xFF00) == 0x7E00:
        return f"google-0x{wire:04x}"
    if (wire & 0xFF00) == 0x7F00:
        return f"draft-{wire & 0xFF}"
    return "final"


def tls13_version_mix(store: NotaryStore, month: _dt.date) -> dict[str, float]:
    """Advertised TLS 1.3 version breakdown for one month (§6.4).

    Returns {version-label: % of supported_versions-bearing weight}.
    Labels: ``"google-0x7e02"``, ``"draft-NN"``, ``"final"``.
    """
    from repro.tls.versions import TLS13, is_tls13_variant

    weights: dict[str, float] = {}
    total = 0.0
    packed = store.packed_columns(month)
    if packed is not None:
        # Shape fast path: the offered flag and wire list are shape
        # fields, so resolve labels once per shape and fold the weight
        # columns in row order — the identical fold the scan performs.
        weight_column, idx_column, templates = packed
        shape_labels: list[list[str] | None] = [
            (
                [
                    _tls13_wire_label(wire)
                    for wire in record.offered_tls13_versions
                    if is_tls13_variant(wire)
                ]
                if record.offered_tls13
                else None
            )
            for record in templates
        ]
        for weight, idx in zip(weight_column, idx_column):
            labels = shape_labels[idx]
            if labels is None:
                continue
            total += weight
            for label in labels:
                weights[label] = weights.get(label, 0.0) + weight
    else:
        for record in store.records(month):
            if not record.offered_tls13:
                continue
            total += record.weight
            for wire in record.offered_tls13_versions:
                if not is_tls13_variant(wire):
                    continue
                label = _tls13_wire_label(wire)
                weights[label] = weights.get(label, 0.0) + record.weight
    if total <= 0:
        return {}
    return {label: weight / total * 100.0 for label, weight in weights.items()}


def unoffered_choice_series(
    store: NotaryStore, months=None
) -> list[tuple[_dt.date, float]]:
    """Monthly % of connections where the server chose an unoffered suite.

    §7.3's protocol violators: GOST responders and the Interwise export
    anomaly.  The denominator is all connections with a Server Hello.
    """
    return [
        (month, value * 100.0)
        for month, value in store.monthly_fraction(
            lambda r: r.server_chose_unoffered,
            within=lambda r: r.negotiated_suite is not None,
            months=months,
        )
    ]


def value_at(series: list[tuple[_dt.date, float]], on: _dt.date) -> float:
    """Series value at (or nearest to) a date — convenience for benches."""
    if not series:
        raise ValueError("empty series")
    return min(series, key=lambda point: abs((point[0] - on).days))[1]


def to_csv(series: Series) -> str:
    """Render a figure's series as CSV (month column + one per label).

    Months missing from a label's series render as empty cells; the
    output loads directly into pandas/gnuplot for re-plotting the paper
    figures.
    """
    import csv
    import io

    months = sorted({m for points in series.values() for m, _ in points})
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["month", *series.keys()])
    lookups = {label: dict(points) for label, points in series.items()}
    for month in months:
        row = [month.isoformat()]
        for label in series:
            value = lookups[label].get(month)
            row.append(f"{value:.4f}" if value is not None else "")
        writer.writerow(row)
    return buffer.getvalue()


def render_series(series: Series, sample_months=None, width: int = 9) -> str:
    """Plain-text rendering of a figure's series for bench output."""
    months = sorted({m for pts in series.values() for m, _ in pts})
    if sample_months is not None:
        months = [m for m in months if m in set(sample_months)]
    lines = []
    header = "month      " + "".join(f"{label:>{max(width, len(label) + 1)}}" for label in series)
    lines.append(header)
    for month in months:
        cells = []
        for label, points in series.items():
            lookup = dict(points)
            value = lookup.get(month)
            cell = f"{value:.1f}" if value is not None else "-"
            cells.append(f"{cell:>{max(width, len(label) + 1)}}")
        lines.append(month.isoformat() + " " + "".join(cells))
    return "\n".join(lines)
