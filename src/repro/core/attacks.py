"""Attack-exposure series and reaction quantification (§5, §7.4).

Two tools:

* :func:`exposure_series` — for each §2.2 attack, the monthly fraction
  of connections satisfying that attack's *precondition* (BEAST needs
  CBC at TLS <= 1.0, Sweet32 needs a negotiated 64-bit block cipher,
  Heartbleed needs a heartbeat-acknowledging endpoint, ...).
* :func:`reaction_report` — §7.4's qualitative verdicts made
  quantitative: how much the relevant metric moved in the year after a
  disclosure compared to the year before, classified as ``fast``,
  ``slow`` or ``none``.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.notary.events import ConnectionRecord
from repro.notary.store import NotaryStore
from repro.simulation.timeline import (
    BEAST,
    HEARTBLEED,
    LUCKY13,
    POODLE,
    RC4_ATTACKS,
    SWEET32,
    Event,
)
from repro.tls.versions import SSL3, TLS10

_ESTABLISHED = lambda r: r.established  # noqa: E731


def _wire(record: ConnectionRecord) -> int:
    return record.negotiated_wire or 0


# ---- per-attack precondition predicates ------------------------------------

def beast_exposed(record: ConnectionRecord) -> bool:
    """CBC-mode under TLS 1.0 or earlier (predictable IVs)."""
    return (
        record.established
        and record.negotiated_mode_class == "CBC"
        and 0 < _wire(record) <= TLS10.wire
    )


def lucky13_exposed(record: ConnectionRecord) -> bool:
    """Any CBC-mode negotiation (timing side channel in the MAC check)."""
    return record.established and record.negotiated_mode_class == "CBC"


def rc4_exposed(record: ConnectionRecord) -> bool:
    """RC4 negotiated: plaintext-recovery biases apply."""
    return record.established and record.negotiated_mode_class == "RC4"


def poodle_exposed(record: ConnectionRecord) -> bool:
    """SSL 3 with CBC actually negotiated (direct exposure)."""
    return (
        record.established
        and _wire(record) == SSL3.wire
        and record.negotiated_mode_class == "CBC"
    )


def heartbleed_exposed(record: ConnectionRecord) -> bool:
    """Heartbeat negotiated: the extension Heartbleed lived in is active."""
    return record.established and record.heartbeat_negotiated


def sweet32_exposed(record: ConnectionRecord) -> bool:
    """A 64-bit-block cipher negotiated (3DES/DES/IDEA)."""
    suite = record.suite
    return record.established and suite is not None and suite.uses_small_block


def freak_exposed(record: ConnectionRecord) -> bool:
    """An export-grade suite actually negotiated."""
    suite = record.suite
    return record.established and suite is not None and suite.is_export


EXPOSURE_PREDICATES = {
    "BEAST": beast_exposed,
    "Lucky13": lucky13_exposed,
    "RC4": rc4_exposed,
    "POODLE": poodle_exposed,
    "Heartbleed": heartbleed_exposed,
    "Sweet32": sweet32_exposed,
    "FREAK": freak_exposed,
}


def exposure_series(
    store: NotaryStore, attack: str
) -> list[tuple[_dt.date, float]]:
    """Monthly % of established connections exposed to an attack."""
    try:
        predicate = EXPOSURE_PREDICATES[attack]
    except KeyError:
        raise KeyError(
            f"unknown attack {attack!r}; choose from {sorted(EXPOSURE_PREDICATES)}"
        ) from None
    return [
        (month, value * 100.0)
        for month, value in store.monthly_fraction(predicate, within=_ESTABLISHED)
    ]


# ---- reaction quantification -------------------------------------------------

@dataclass(frozen=True)
class Reaction:
    """How the ecosystem moved around one disclosure."""

    attack: str
    disclosed: _dt.date
    before: float          # exposure 12 months before disclosure (%)
    at_disclosure: float   # exposure at disclosure (%)
    after: float           # exposure 12 months after (%)
    verdict: str           # "fast" | "slow" | "none"

    @property
    def pre_trend(self) -> float:
        return self.at_disclosure - self.before

    @property
    def post_trend(self) -> float:
        return self.after - self.at_disclosure


_REACTION_EVENTS: dict[str, Event] = {
    "BEAST": BEAST,
    "Lucky13": LUCKY13,
    "RC4": RC4_ATTACKS,
    "POODLE": POODLE,
    "Heartbleed": HEARTBLEED,
    "Sweet32": SWEET32,
}


def _value_near(series, on: _dt.date) -> float:
    return min(series, key=lambda point: abs((point[0] - on).days))[1]


def classify_reaction(before: float, at: float, after: float) -> str:
    """§7.4's taxonomy.

    ``fast``  — exposure more than halves within a year of disclosure;
    ``slow``  — it declines meaningfully (>15% relative) but less than half;
    ``none``  — flat or rising.
    """
    if at <= 0:
        return "none"
    drop = (at - after) / at
    if drop >= 0.5:
        return "fast"
    if drop >= 0.15:
        return "slow"
    return "none"


def reaction_report(store: NotaryStore) -> list[Reaction]:
    """Reaction verdicts for every attack inside the store's window."""
    months = store.months()
    if not months:
        return []
    window_start, window_end = months[0], months[-1]
    reactions = []
    for attack, event in _REACTION_EVENTS.items():
        year = _dt.timedelta(days=365)
        if not (window_start + year <= event.date <= window_end - year):
            continue
        series = exposure_series(store, attack)
        before = _value_near(series, event.date - year)
        at = _value_near(series, event.date)
        after = _value_near(series, event.date + year)
        reactions.append(
            Reaction(
                attack=attack,
                disclosed=event.date,
                before=before,
                at_disclosure=at,
                after=after,
                verdict=classify_reaction(before, at, after),
            )
        )
    return reactions
