"""Row generators for every table in the paper.

Tables 3-6 are derived by diffing consecutive releases of each browser
family — the same information the paper compiled from release notes —
so the tests can assert our release histories reproduce the published
counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clients import chrome, firefox, ie, opera, safari
from repro.clients.profile import ClientFamily, ClientRelease
from repro.core.database import FingerprintDatabase
from repro.tls.versions import release_date_table


def table1_version_dates() -> list[tuple[str, str]]:
    """Table 1: release dates of all SSL/TLS versions."""
    return release_date_table()


def table2_fingerprint_summary(
    db: FingerprintDatabase, records
) -> list[tuple[str, int, float]]:
    """Table 2 rows: (category, #fingerprints, coverage %), plus All."""
    counts = db.count_by_category()
    coverage = db.coverage(records)
    rows = [
        (category, counts.get(category, 0), coverage.get(category, 0.0) * 100.0)
        for category in sorted(counts, key=lambda c: -coverage.get(c, 0.0))
    ]
    rows.append(("All", len(db), coverage.get("All", 0.0) * 100.0))
    return rows


@dataclass(frozen=True)
class SuiteCountChange:
    """One row of Tables 3/4/5: a change in a browser's suite counts."""

    browser: str
    version: str
    date: str
    before: int
    after: int
    note: str = ""

    def __str__(self) -> str:  # pragma: no cover - formatting
        base = f"{self.browser:<8} {self.version:<6} {self.date}  {self.before:>2} -> {self.after:<2}"
        return f"{base}  {self.note}" if self.note else base


_BROWSER_FAMILIES = (chrome, firefox, opera, safari, ie)


def _families() -> list[ClientFamily]:
    return [module.family() for module in _BROWSER_FAMILIES]


def _count_changes(predicate, note_for=None) -> list[SuiteCountChange]:
    rows: list[SuiteCountChange] = []
    for family in _families():
        previous: ClientRelease | None = None
        for release in family.releases:
            count = release.count_suites(predicate)
            if previous is not None:
                prev_count = previous.count_suites(predicate)
                if count != prev_count:
                    note = note_for(previous, release) if note_for else ""
                    rows.append(
                        SuiteCountChange(
                            browser=family.name,
                            version=release.version,
                            date=release.released.isoformat(),
                            before=prev_count,
                            after=count,
                            note=note,
                        )
                    )
            previous = release
    return rows


def table3_cbc_changes() -> list[SuiteCountChange]:
    """Table 3: changes in the number of CBC suites offered by browsers."""
    return _count_changes(lambda s: s.is_cbc)


def table4_rc4_changes() -> list[SuiteCountChange]:
    """Table 4: changes in RC4 suite support, with policy annotations.

    Policy-only changes (Firefox's fallback-only and whitelist-only
    steps) are emitted as extra rows even though the default hello's
    count does not change at those releases.
    """
    rows = _count_changes(
        lambda s: s.is_rc4,
        note_for=lambda prev, cur: {
            "fallback_only": "fallback only",
            "whitelist_only": "whitelist only",
            "removed": "removed completely",
        }.get(cur.rc4_policy, ""),
    )
    # Policy transitions without a count change.
    for family in _families():
        previous: ClientRelease | None = None
        for release in family.releases:
            if (
                previous is not None
                and release.rc4_policy != previous.rc4_policy
                and release.count_suites(lambda s: s.is_rc4)
                == previous.count_suites(lambda s: s.is_rc4)
            ):
                rows.append(
                    SuiteCountChange(
                        browser=family.name,
                        version=release.version,
                        date=release.released.isoformat(),
                        before=previous.count_suites(lambda s: s.is_rc4),
                        after=release.count_suites(lambda s: s.is_rc4),
                        note={
                            "fallback_only": "fallback only",
                            "whitelist_only": "whitelist only",
                            "removed": "removed completely",
                        }.get(release.rc4_policy, release.rc4_policy),
                    )
                )
            previous = release
    rows.sort(key=lambda r: (r.browser, r.date))
    return rows


def table5_3des_changes() -> list[SuiteCountChange]:
    """Table 5: changes in the number of 3DES suites offered by browsers."""
    return _count_changes(lambda s: s.is_3des)


@dataclass(frozen=True)
class ProtocolSupportChange:
    """One row of Table 6: a browser protocol-support milestone."""

    browser: str
    version: str
    date: str
    change: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{self.browser:<8} {self.version:<6} {self.date}  {self.change}"


def table6_protocol_support() -> list[ProtocolSupportChange]:
    """Table 6: browser TLS version support timeline."""
    from repro.tls.versions import TLS11, TLS12, version_by_wire

    rows: list[ProtocolSupportChange] = []
    for family in _families():
        previous: ClientRelease | None = None
        for release in family.releases:
            changes: list[str] = []
            if previous is not None:
                if release.max_version > previous.max_version:
                    new_versions = [
                        version_by_wire(w).pretty
                        for w in (TLS11.wire, TLS12.wire)
                        if previous.max_version < w <= release.max_version
                    ]
                    if new_versions:
                        changes.append("/".join(v.split()[-1] for v in new_versions))
                        changes[-1] = "TLS " + changes[-1] + " supported"
                if previous.ssl3_fallback and not release.ssl3_fallback:
                    changes.append("SSL 3 fallback removed")
                if not previous.supported_versions and release.supported_versions:
                    changes.append("TLS 1.3 supported")
            for change in changes:
                rows.append(
                    ProtocolSupportChange(
                        browser=family.name,
                        version=release.version,
                        date=release.released.isoformat(),
                        change=change,
                    )
                )
            previous = release
    return rows
