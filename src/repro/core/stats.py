"""Fingerprint lifetime statistics (§4.1).

Computed over Monte-Carlo records, which carry exact observation days:
for every distinct fingerprint, the duration between its first and last
sighting; the population of single-day fingerprints (unstable cipher
orders); and the long-lived fingerprints responsible for a dispropor-
tionate connection share.
"""

from __future__ import annotations

import datetime as _dt
import math
from dataclasses import dataclass

from repro.notary.store import NotaryStore


@dataclass(frozen=True)
class FingerprintLifetime:
    """Sighting window of one fingerprint."""

    first_seen: _dt.date
    last_seen: _dt.date
    connections: float

    @property
    def duration_days(self) -> int:
        """Inclusive sighting duration: a single-day fingerprint lasts 1."""
        return (self.last_seen - self.first_seen).days + 1


@dataclass(frozen=True)
class DurationSummary:
    """§4.1's summary statistics."""

    fingerprints: int
    max_days: int
    median_days: float
    mean_days: float
    q3_days: float
    std_days: float
    single_day: int
    single_day_connections: float
    long_lived: int
    long_lived_connections_share: float
    total_connections: float


def fingerprint_lifetimes(store: NotaryStore) -> dict[str, FingerprintLifetime]:
    """First/last sighting per fingerprint digest (day-resolution records)."""
    from repro.core.fingerprint import Fingerprint

    windows: dict[str, FingerprintLifetime] = {}
    for record in store.records():
        if record.fingerprint is None or record.day is None:
            continue
        digest = Fingerprint.from_fields(record.fingerprint).digest
        existing = windows.get(digest)
        if existing is None:
            windows[digest] = FingerprintLifetime(record.day, record.day, record.weight)
        else:
            windows[digest] = FingerprintLifetime(
                first_seen=min(existing.first_seen, record.day),
                last_seen=max(existing.last_seen, record.day),
                connections=existing.connections + record.weight,
            )
    return windows


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        raise ValueError("no values")
    index = q * (len(sorted_values) - 1)
    low = int(math.floor(index))
    high = int(math.ceil(index))
    if low == high:
        return sorted_values[low]
    frac = index - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def duration_summary(
    store: NotaryStore, long_lived_days: int = 1200
) -> DurationSummary:
    """§4.1's statistics over a Monte-Carlo store."""
    windows = fingerprint_lifetimes(store)
    if not windows:
        raise ValueError("store has no day-resolution fingerprint records")
    durations = sorted(float(w.duration_days) for w in windows.values())
    total_connections = sum(w.connections for w in windows.values())
    mean = sum(durations) / len(durations)
    variance = sum((d - mean) ** 2 for d in durations) / len(durations)
    single = [w for w in windows.values() if w.duration_days == 1]
    long_lived = [w for w in windows.values() if w.duration_days >= long_lived_days]
    return DurationSummary(
        fingerprints=len(windows),
        max_days=int(durations[-1]),
        median_days=_quantile(durations, 0.5),
        mean_days=mean,
        q3_days=_quantile(durations, 0.75),
        std_days=math.sqrt(variance),
        single_day=len(single),
        single_day_connections=sum(w.connections for w in single),
        long_lived=len(long_lived),
        long_lived_connections_share=(
            sum(w.connections for w in long_lived) / total_connections
            if total_connections
            else 0.0
        ),
        total_connections=total_connections,
    )


def long_lived_software(
    store: NotaryStore, database, min_days: int = 1200, top: int = 8
) -> list[tuple[str, float]]:
    """Identified software behind the longest-lived fingerprints (§4.1).

    The paper identified 343 of its 1,203 >=1,200-day fingerprints, led
    by "iPad Air (library), Safari, Android SDK, as well as Chrome,
    Firefox, and the MacOs Mail App".  Returns (software, connection
    share among long-lived traffic) pairs, labeled ones only, sorted by
    share.
    """
    from repro.core.fingerprint import Fingerprint

    windows = fingerprint_lifetimes(store)
    long_digests = {
        digest for digest, w in windows.items() if w.duration_days >= min_days
    }
    if not long_digests:
        return []
    weights: dict[str, float] = {}
    total = 0.0
    for record in store.records():
        if record.fingerprint is None or record.day is None:
            continue
        fingerprint = Fingerprint.from_fields(record.fingerprint)
        if fingerprint.digest not in long_digests:
            continue
        total += record.weight
        label = database.match(fingerprint)
        if label is not None:
            weights[label.software] = weights.get(label.software, 0.0) + record.weight
    if total <= 0:
        return []
    ranked = sorted(weights.items(), key=lambda kv: -kv[1])[:top]
    return [(software, weight / total) for software, weight in ranked]


def most_common_unlabeled_share(store: NotaryStore, database) -> float:
    """Traffic share of the single most common *unlabeled* fingerprint.

    §4.0.1: "The most common unlabeled fingerprint is responsible for
    only 1% of remaining traffic" — the diminishing-returns argument
    against harvesting ever more fingerprints.  The share is relative to
    the unlabeled traffic (the "remaining" traffic in the paper's words).
    """
    from repro.core.fingerprint import Fingerprint

    weights: dict[str, float] = {}
    unlabeled_total = 0.0
    for record in store.records():
        if record.fingerprint is None:
            continue
        fingerprint = Fingerprint.from_fields(record.fingerprint)
        if database.match(fingerprint) is not None:
            continue
        unlabeled_total += record.weight
        weights[fingerprint.digest] = weights.get(fingerprint.digest, 0.0) + record.weight
    if unlabeled_total <= 0:
        return 0.0
    return max(weights.values()) / unlabeled_total


def top_fingerprint_concentration(store: NotaryStore, top: int = 10) -> float:
    """Connection share of the ``top`` most common fingerprints (§4.0.1).

    Works on any store whose records carry fingerprints (weights count).
    """
    from repro.core.fingerprint import Fingerprint

    weights: dict[str, float] = {}
    total = 0.0
    for record in store.records():
        if record.fingerprint is None:
            continue
        digest = Fingerprint.from_fields(record.fingerprint).digest
        weights[digest] = weights.get(digest, 0.0) + record.weight
        total += record.weight
    if total <= 0:
        return 0.0
    ranked = sorted(weights.values(), reverse=True)
    return sum(ranked[:top]) / total
