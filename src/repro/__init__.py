"""Reproduction of "Coming of Age: A Longitudinal Study of TLS Deployment".

Kotzias et al., IMC 2018.  The package provides the paper's primary
contribution — large-scale TLS client fingerprinting and longitudinal
ecosystem analysis — together with every substrate it runs on: a TLS
protocol model (hello messages, wire codec, negotiation), release-dated
client profiles, an evolving server population, a Zeek-style passive
monitor (the "Notary"), and a ZMap/ZGrab-style active scanner (the
"Censys" archive).

Quick start::

    from repro import EcosystemModel
    from repro.core import figures

    model = EcosystemModel()
    store = model.passive_store()
    print(figures.render_series(figures.fig1_negotiated_versions(store)))
"""

from repro.core.database import FingerprintDatabase, build_default_database
from repro.core.fingerprint import Fingerprint, extract
from repro.simulation.ecosystem import EcosystemModel, default_model

__version__ = "1.0.0"

__all__ = [
    "FingerprintDatabase",
    "build_default_database",
    "Fingerprint",
    "extract",
    "EcosystemModel",
    "default_model",
    "__version__",
]
