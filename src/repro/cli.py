"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figure fig1..fig10`` — print a paper figure's monthly series.
* ``table 1..6`` — print a paper table.
* ``scan chrome2015|ssl3|export`` — run a Censys-style scan schedule.
* ``pulse`` — run the SSL Pulse-style RC4 survey.
* ``fingerprint <family> <version>`` — fingerprint a known client release.
* ``timeline`` — print the attack/event timeline.
* ``stats`` — build/load the expectation dataset and print engine perf
  counters (negotiations, cache hits, chunk wall times, records/s, and
  the resilience counters: retries, timeouts, inline fallbacks, resumed
  months, cache evictions).  ``stats --json`` emits the same data — plus
  the run's trace spans and any profiling capture — as one
  machine-readable JSON document.
* ``run`` — execute one expectation run end-to-end (fresh by default),
  the producer half of ``repro run --metrics m.jsonl && repro trace
  m.jsonl``.
* ``trace <metrics.jsonl>`` — reconstruct the span tree from a metrics
  sink and report ``--summary`` / ``--critical-path`` /
  ``--utilization`` / ``--faults-report``, or export ``--chrome
  OUT.json`` for chrome://tracing / Perfetto.
* ``bench`` — run the benchmark harness (:mod:`repro.bench`), append a
  record to the dated ``BENCH_<YYYYMMDD>.json`` trajectory, and gate
  against ``benchmarks/baseline.json`` (exit 1 on regression).
* ``serve`` — resident query server (:mod:`repro.serve`): load the
  packed dataset once, then answer ``/figures/<name>``, ``/query``,
  ``/stats``, and ``/healthz`` as JSON — plus ``/metrics`` as
  Prometheus text exposition — until SIGINT/SIGTERM.  Binds port 0 by
  default and announces the chosen port on stdout (``serving on
  http://host:port``) — never hard-code a port.
* ``loadtest <url>`` — hammer a live server with a thread pool of
  keep-alive connections; report p50/p95/p99 latency, sustained RPS,
  and the server-side max-in-flight gauge (exit 1 on any error).
  ``--slo p99=50ms,error_rate=0.1%`` evaluates the report against SLO
  objectives with burn reporting (observed/target) next to the
  server's sliding-window view; a violated objective also exits 1.
* ``top <url>`` — live refreshing terminal dashboard over a running
  server's ``/metrics``: windowed RPS and error rate, per-route
  p50/p95/p99, in-flight gauges, query-tier mix, fault/retry counters.

Engine flags (global, before the command): ``--workers N`` shards the
expectation run across N processes (``REPRO_WORKERS``; 0 = serial),
``--no-cache`` disables the persistent dataset cache, ``--rebuild``
ignores and overwrites any cached dataset, ``--resume`` picks a killed
run back up from its month checkpoints, ``--faults SPEC`` injects
deterministic faults (``worker_crash:0.1,chunk_hang:0.05,seed:42`` —
see :mod:`repro.engine.faults`) to exercise the recovery paths, and
``--scale N`` (``REPRO_SCALE``) multiplies per-month record counts by N
at ``weight/N`` — record volume scales, aggregates stay put, and the
streaming ingest path keeps resident memory bounded (``--scale 1`` is
the seed dataset exactly).  Note ``bench``'s own ``--scale`` (after the
subcommand) is the micro-bench *iteration* multiplier, a different
knob.  ``--backend fork|inline|spawn`` (``REPRO_BACKEND``; flag wins)
selects the execution backend worker chunks run on — see
:mod:`repro.engine.executors`.

Observability (:mod:`repro.obs`): ``--verbose`` (or ``REPRO_LOG_LEVEL``)
turns on the ``repro.*`` diagnostic loggers on stderr; ``--metrics
PATH`` (or ``REPRO_METRICS_PATH``; the flag wins when both are set)
appends one JSON line per engine event to that file (the CLI rotates a
pre-existing file aside at startup — except under ``trace``, which only
*reads* sinks and must never rotate the file it is about to analyze);
``--profile cprofile|tracemalloc`` (or ``REPRO_PROFILE``; flag wins)
wraps the engine phases in opt-in profiling whose hotspots surface in
``stats --json`` and bench records.

Every command resolves the simulation through one process-wide
:func:`repro.simulation.ecosystem.default_model`, so chaining commands
in a single process (``main([...]); main([...])``) simulates at most
once.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import os
import sys
import time


def _model(args: argparse.Namespace | None = None):
    from repro.simulation.ecosystem import default_model

    if args is None:
        return default_model()
    return default_model(
        workers=getattr(args, "workers", None),
        use_cache=False if getattr(args, "no_cache", False) else None,
        rebuild=getattr(args, "rebuild", False),
        faults=getattr(args, "faults", None),
        resume=True if getattr(args, "resume", False) else None,
        scale=getattr(args, "scale", None),
    )


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.core import figures

    generators = {
        "fig1": figures.fig1_negotiated_versions,
        "fig2": figures.fig2_negotiated_modes,
        "fig3": figures.fig3_advertised_modes,
        "fig4": figures.fig4_fingerprint_support,
        "fig5": figures.fig5_cipher_positions,
        "fig6": figures.fig6_rc4_advertised,
        "fig7": figures.fig7_weak_advertised,
        "fig8": figures.fig8_key_exchange,
        "fig9": figures.fig9_negotiated_aead,
        "fig10": figures.fig10_advertised_aead,
    }
    generator = generators.get(args.name)
    if generator is None:
        print(f"unknown figure {args.name!r}; choose from {sorted(generators)}", file=sys.stderr)
        return 2
    store = _model(args).passive_store()
    series = generator(store)
    months = None
    if not args.all_months:
        months = [_dt.date(year, 1, 1) for year in range(2012, 2019)]
        months += [_dt.date(2018, 4, 1)]
    print(figures.render_series(series, sample_months=months))
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    from repro.core import tables

    number = args.number
    if number == 1:
        for name, date in tables.table1_version_dates():
            print(f"{name:<8} {date}")
        return 0
    if number == 2:
        model = _model(args)
        records = [
            r for r in model.passive_store().records() if r.fingerprint is not None
        ]
        for category, count, coverage in tables.table2_fingerprint_summary(
            model.database(), records
        ):
            print(f"{category:<26} {count:>5} fps  {coverage:6.2f}%")
        return 0
    rows = {
        3: tables.table3_cbc_changes,
        4: tables.table4_rc4_changes,
        5: tables.table5_3des_changes,
        6: tables.table6_protocol_support,
    }.get(number)
    if rows is None:
        print("table number must be 1-6", file=sys.stderr)
        return 2
    for row in rows():
        print(row)
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    archive = _model(args).scan(args.probe, interval_days=args.interval)
    key = args.key
    for date, value in archive.series(args.probe, key):
        print(f"{date}  {value * 100:6.2f}%")
    return 0


def cmd_pulse(args: argparse.Namespace) -> int:
    for survey in _model(args).pulse().series(interval_days=args.interval):
        print(
            f"{survey.date}  rc4 supported {survey.rc4_supported * 100:5.1f}%"
            f"   rc4-only {survey.rc4_only * 100:6.3f}%"
        )
    return 0


def cmd_fingerprint(args: argparse.Namespace) -> int:
    import random

    from repro.core.fingerprint import extract

    model = _model(args)
    try:
        family = model.clients.family(args.family)
        release = family.release(args.version)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    hello = release.build_hello(rng=random.Random(0))
    fingerprint = extract(hello)
    print(f"client : {release.label}")
    print(f"digest : {fingerprint.digest}")
    print(f"fields : {fingerprint.canonical}")
    label = model.database().match(fingerprint)
    if label:
        print(f"label  : {label.software} {label.version_range} ({label.category})")
    else:
        print("label  : (not in database)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report import build_report

    print(build_report(_model(args)), end="")
    return 0


def cmd_calibration(args: argparse.Namespace) -> int:
    from repro.simulation.calibration import render_sheet

    print(render_sheet(), end="")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.simulation.timeline import ATTACK_TIMELINE, BROWSER_RC4_REMOVAL

    events = ATTACK_TIMELINE + (BROWSER_RC4_REMOVAL if args.browsers else ())
    for event in sorted(events, key=lambda e: e.date):
        print(f"{event.date}  [{event.kind:<9}] {event.name:<18} {event.description}")
    return 0


#: Version of the ``stats --json`` document layout; bump on any
#: backwards-incompatible key change (tests pin the schema).
#: History: 1 — initial (schema/dataset/counters/derived/trace);
#: 2 — added top-level ``profile`` (null unless ``--profile`` /
#: ``REPRO_PROFILE`` is active) and span records gained ``id`` /
#: ``parent_id`` / ``pid``.
#: 3 — ``counters`` gained the shape-tier fields ``shape_evals`` /
#: ``shape_path_hits`` / ``scan_fallbacks``.
#: 4 — ``counters`` gained the vector-tier fields ``vector_path_hits``
#: / ``vector_compile_misses``.
#: 5 — ``counters`` gained the serve fields ``http_requests`` /
#: ``http_errors`` / ``http_route_latency`` (the per-route latency
#: ledger of the resident server).
#: 6 — live-telemetry layer: top-level ``histograms`` (named duration
#: histograms as mergeable snapshots — bounds/counts/count/sum/max/min/
#: exemplars) and ``window`` (the sliding-window section; null in batch
#: documents, populated by the resident server's ``/stats``); the
#: route-ledger entries swapped their unbounded ``samples`` list for a
#: bounded ``histogram`` snapshot; ``counters`` gained
#: ``duration_histograms``.
STATS_SCHEMA = 6


def _stats_payload(model, store, wall: float) -> dict:
    """The machine-readable ``stats --json`` document."""
    from repro import obs
    from repro.engine.perf import PERF

    return {
        "schema": STATS_SCHEMA,
        "dataset": {
            "start": model.start.isoformat(),
            "end": model.end.isoformat(),
            "months": len(store.months()),
            "records": len(store),
            "wall_seconds": wall,
        },
        "counters": PERF.snapshot(),
        "derived": {"records_per_second": PERF.records_per_second()},
        # Schema 6: named duration histograms (per-month simulation,
        # per-chunk wall) as mergeable snapshots, and the sliding-window
        # section — always null in batch documents; the resident
        # server's /stats fills it from live telemetry.
        "histograms": {
            name: hist.snapshot()
            for name, hist in sorted(PERF.duration_histograms.items())
        },
        "window": None,
        "trace": {
            "trace_id": obs.trace_id(),
            "spans": obs.snapshot_spans(),
            "dropped_spans": obs.TRACE.dropped,
        },
        "profile": obs.profile.snapshot(),
    }


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.engine.perf import PERF

    model = _model(args)
    started = time.perf_counter()
    store = model.passive_store()
    wall = time.perf_counter() - started
    if getattr(args, "json", False):
        import json

        print(json.dumps(_stats_payload(model, store, wall), indent=2, default=str))
        return 0
    months = store.months()
    print("DATASET")
    print("-------")
    print(f"window              : {model.start} .. {model.end}")
    print(f"months              : {len(months)}")
    print(f"records             : {len(store)}")
    print(f"dataset wall seconds: {wall:.3f}")
    print()
    print(PERF.render())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """One expectation run end-to-end, fresh by default.

    The producer half of the worked pair ``repro run --metrics m.jsonl
    && repro trace m.jsonl`` — without ``--rebuild``-by-default a warm
    cache would short-circuit the engine and leave nothing to trace.
    """
    from repro import obs

    if not args.cached:
        args.rebuild = True
    model = _model(args)
    started = time.perf_counter()
    store = model.passive_store()
    wall = time.perf_counter() - started
    print(
        f"run complete: {len(store.months())} month(s), "
        f"{len(store)} records in {wall:.3f}s"
    )
    sink = obs.metrics_path()
    if sink:
        print(f"metrics sink: {sink}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import analyze

    try:
        events = analyze.load_events(args.metrics_file)
        analysis = analyze.analyze(events, args.trace_id)
    except analyze.TraceError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    sections = []
    if args.summary:
        sections.append(analyze.render_summary(analysis))
    if args.critical_path:
        sections.append(analyze.render_critical_path(analysis))
    if args.utilization:
        sections.append(analyze.render_utilization(analysis))
    if args.faults_report:
        sections.append(analyze.render_faults(analysis))
    if not sections and not args.chrome:
        sections.append(analyze.render_summary(analysis))
    if sections:
        print("\n\n".join(sections))
    if args.chrome:
        path = analyze.write_chrome_trace(analysis, args.chrome)
        print(
            f"chrome trace written: {path} "
            "(load in ui.perfetto.dev or chrome://tracing)"
        )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro import bench

    try:
        run = bench.run_benches(
            args.benches or None,
            quick=args.quick,
            scale=args.bench_scale,
            profile_mode=getattr(args, "profile", None),
        )
    except ValueError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    trajectory = bench.write_trajectory(run, args.out_dir)
    baseline_arg = args.baseline or bench.DEFAULT_BASELINE
    if args.update_baseline:
        baseline_path = Path(baseline_arg)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(bench.make_baseline(run), indent=2), encoding="utf-8"
        )
        print(bench.render_run(run))
        print(f"\ntrajectory: {trajectory}")
        print(f"baseline updated: {baseline_path}")
        return 0
    baseline = bench.load_baseline(baseline_arg)
    if baseline is None:
        print(bench.render_run(run))
        print(f"\ntrajectory: {trajectory}")
        print(f"bench: no baseline at {baseline_arg}; gate skipped", file=sys.stderr)
        return 0
    failures = bench.diff_baseline(run, baseline)
    print(bench.render_run(run, failures))
    print(f"\ntrajectory: {trajectory}")
    return 1 if failures else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident query server until SIGINT/SIGTERM.

    The socket binds and the port is announced *before* the dataset
    loads (``/healthz`` answers 503 meanwhile), so orchestrators can
    poll readiness instead of retrying connection failures.  The
    chosen port is printed as ``serving on http://host:port`` — with
    the default ``--port 0`` the kernel picks a free one, which is
    what keeps parallel CI jobs collision-free.
    """
    import signal

    from repro.serve.server import announce_line, start_server

    def load_store():
        if args.start is not None or args.end is not None:
            from repro.simulation.ecosystem import (
                STUDY_END,
                STUDY_START,
                EcosystemModel,
            )

            model = EcosystemModel(
                start=args.start or STUDY_START,
                end=args.end or STUDY_END,
                workers=getattr(args, "workers", None),
                use_cache=False if getattr(args, "no_cache", False) else None,
                rebuild=getattr(args, "rebuild", False),
                faults=getattr(args, "faults", None),
                resume=True if getattr(args, "resume", False) else None,
                scale=getattr(args, "scale", None),
            )
        else:
            model = _model(args)
        return model.passive_store()

    handle = start_server(
        loader=load_store,
        host=args.host,
        port=args.port,
        query_workers=getattr(args, "query_workers", 0),
    )
    print(announce_line(args.host, handle.port), flush=True)

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        while handle.thread.is_alive():
            handle.thread.join(timeout=0.5)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        handle.close()
    print("shutdown: clean", flush=True)
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.serve.loadtest import parse_slo, render_report, run_loadtest

    slo = None
    if getattr(args, "slo", None):
        try:
            slo = parse_slo(args.slo)
        except ValueError as exc:
            print(f"loadtest: {exc}", file=sys.stderr)
            return 2
    report = run_loadtest(
        args.url,
        requests=args.requests,
        concurrency=args.concurrency,
        timeout=args.timeout,
        slo=slo,
    )
    if args.json:
        import json

        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
    slo_failed = slo is not None and not report["slo"]["ok"]
    return 1 if (report["errors"] or slo_failed) else 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import run_top

    return run_top(
        args.url,
        interval=args.interval,
        iterations=args.count,
        timeout=args.timeout,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Coming of Age: A Longitudinal Study of TLS Deployment' (IMC 2018)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the expectation run "
             "(default: REPRO_WORKERS or CPU count; 0 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent dataset cache (REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--rebuild", action="store_true",
        help="ignore any cached dataset and overwrite it with a fresh run",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume a killed run from its month checkpoints (REPRO_RESUME)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject deterministic faults, e.g. "
             "'worker_crash:0.1,chunk_hang:0.05,seed:42' (REPRO_FAULTS)",
    )
    parser.add_argument(
        "--scale", type=int, default=None, metavar="N",
        help="dataset scale: emit every expectation record N times at "
             "weight/N — record counts multiply, aggregates stay put "
             "(REPRO_SCALE; default 1 = the seed dataset exactly)",
    )
    parser.add_argument(
        "--backend", default=None, choices=["fork", "inline", "spawn"],
        help="execution backend for worker chunks: fork pool (platform "
             "default), inline in-process, or spawned interpreters "
             "(REPRO_BACKEND; the flag wins when both are set)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="DEBUG-level repro.* diagnostics on stderr "
             "(default level: REPRO_LOG_LEVEL or WARNING)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="append one JSON line per engine event to PATH "
             "(alias for REPRO_METRICS_PATH; the flag wins when both "
             "are set)",
    )
    parser.add_argument(
        "--profile", default=None, choices=["cprofile", "tracemalloc"],
        help="profile the engine phases and surface hotspots in "
             "stats --json / bench records (REPRO_PROFILE; flag wins)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # The observability flags also parse *after* the subcommand
    # (``repro run --metrics m.jsonl``).  SUPPRESS keeps an absent
    # subcommand-position flag from clobbering a value the global
    # position already parsed.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--metrics", default=argparse.SUPPRESS, metavar="PATH",
        help=argparse.SUPPRESS,
    )
    obs_flags.add_argument(
        "--profile", default=argparse.SUPPRESS,
        choices=["cprofile", "tracemalloc"], help=argparse.SUPPRESS,
    )

    p_figure = sub.add_parser("figure", help="print a paper figure's series")
    p_figure.add_argument("name", help="fig1 .. fig10")
    p_figure.add_argument("--all-months", action="store_true")
    p_figure.set_defaults(func=cmd_figure)

    p_table = sub.add_parser("table", help="print a paper table")
    p_table.add_argument("number", type=int, help="1 .. 6")
    p_table.set_defaults(func=cmd_table)

    p_scan = sub.add_parser("scan", help="run a Censys-style scan schedule")
    p_scan.add_argument("probe", choices=["chrome2015", "ssl3", "export"])
    p_scan.add_argument("--key", default="handshake",
                        help="handshake | rc4 | cbc | 3des | aead | fs | heartbeat | heartbleed")
    p_scan.add_argument("--interval", type=int, default=56)
    p_scan.set_defaults(func=cmd_scan)

    p_pulse = sub.add_parser("pulse", help="run the SSL Pulse RC4 survey")
    p_pulse.add_argument("--interval", type=int, default=56)
    p_pulse.set_defaults(func=cmd_pulse)

    p_fp = sub.add_parser("fingerprint", help="fingerprint a known client release")
    p_fp.add_argument("family", help='e.g. "Chrome"')
    p_fp.add_argument("version", help='e.g. "49"')
    p_fp.set_defaults(func=cmd_fingerprint)

    p_report = sub.add_parser("report", help="print the full study summary")
    p_report.set_defaults(func=cmd_report)

    p_cal = sub.add_parser("calibration", help="print the calibration sheet")
    p_cal.set_defaults(func=cmd_calibration)

    p_tl = sub.add_parser("timeline", help="print the attack timeline")
    p_tl.add_argument("--browsers", action="store_true",
                      help="include browser RC4-removal milestones")
    p_tl.set_defaults(func=cmd_timeline)

    p_stats = sub.add_parser(
        "stats", parents=[obs_flags],
        help="build/load the dataset and print engine perf counters",
    )
    p_stats.add_argument(
        "--json", action="store_true",
        help="emit the dataset summary, every perf counter, and the "
             "run's trace spans as one JSON document",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_run = sub.add_parser(
        "run", parents=[obs_flags],
        help="execute one expectation run end-to-end (fresh by default)",
    )
    p_run.add_argument(
        "--cached", action="store_true",
        help="allow the persistent dataset cache to satisfy the run "
             "(default rebuilds so the engine actually executes)",
    )
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="analyze a metrics JSONL sink (span tree, critical "
                      "path, utilization, Chrome trace export)"
    )
    p_trace.add_argument("metrics_file", help="path to a metrics .jsonl sink")
    p_trace.add_argument(
        "--trace-id", default=None,
        help="analyze this trace (default: the sink's last run)",
    )
    p_trace.add_argument(
        "--summary", action="store_true",
        help="span-tree summary (default when no mode is given)",
    )
    p_trace.add_argument(
        "--critical-path", action="store_true",
        help="the chain of spans that bounded the run's wall clock",
    )
    p_trace.add_argument(
        "--utilization", action="store_true",
        help="per-worker busy/idle/retry timeline and straggler",
    )
    p_trace.add_argument(
        "--faults-report", action="store_true",
        help="retry/timeout/fault attribution per month and chunk",
    )
    p_trace.add_argument(
        "--chrome", default=None, metavar="OUT.json",
        help="export Chrome-trace JSON (chrome://tracing, Perfetto)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_bench = sub.add_parser(
        "bench", parents=[obs_flags],
        help="run the benchmark harness; append to the dated "
             "trajectory and gate against benchmarks/baseline.json",
    )
    p_bench.add_argument(
        "benches", nargs="*",
        help="bench names to run (default: all; see repro.bench.BENCHES)",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="the CI subset: micro-benches, serial engine, anchors",
    )
    p_bench.add_argument(
        "--scale", dest="bench_scale", type=float, default=1.0, metavar="X",
        help="multiply micro-bench iteration counts by X (default 1.0; "
             "distinct from the global --scale dataset knob)",
    )
    p_bench.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline to gate against (default benchmarks/baseline.json)",
    )
    p_bench.add_argument(
        "--update-baseline", action="store_true",
        help="pin this run's numbers as the new baseline instead of gating",
    )
    p_bench.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="directory for BENCH_<YYYYMMDD>.json (default: cwd)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve", parents=[obs_flags],
        help="resident query server: figures/queries/stats as a JSON "
             "API over one shared packed store (binds port 0 and "
             "announces the chosen port)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="bind port; 0 (the default) lets the kernel pick a free "
             "one, announced as 'serving on http://host:port'",
    )
    p_serve.add_argument(
        "--start", type=_dt.date.fromisoformat, default=None,
        metavar="YYYY-MM-DD",
        help="serve a sub-window starting here (default: full study)",
    )
    p_serve.add_argument(
        "--end", type=_dt.date.fromisoformat, default=None,
        metavar="YYYY-MM-DD",
        help="serve a sub-window ending here (default: full study)",
    )
    p_serve.add_argument(
        "--query-workers", type=int, default=0, metavar="N",
        help="dispatch /query and /figures evaluation to N pre-warmed "
             "store replica processes (default 0 = the threaded path; "
             "needs the fork start method)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "loadtest", parents=[obs_flags],
        help="drive concurrent requests at a live server; report "
             "p50/p95/p99 latency and sustained RPS (exit 1 on errors)",
    )
    p_load.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8321")
    p_load.add_argument(
        "--requests", type=int, default=2000,
        help="total request budget across all threads (default 2000)",
    )
    p_load.add_argument(
        "--concurrency", type=int, default=32,
        help="client threads, one keep-alive connection each (default 32)",
    )
    p_load.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request socket timeout in seconds (default 30)",
    )
    p_load.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of the human summary",
    )
    p_load.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="evaluate the report against SLO objectives, e.g. "
             "'p99=50ms,error_rate=0.1%%' (p50/p95/p99/max in ms or s, "
             "error_rate as %% or fraction); a violation exits 1",
    )
    p_load.set_defaults(func=cmd_loadtest)

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running server's /metrics "
             "(windowed RPS, per-route p50/p95/p99, tier mix, faults)",
    )
    p_top.add_argument(
        "url", help="server base URL, e.g. http://127.0.0.1:8321"
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval (default 2.0)",
    )
    p_top.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="render N frames then exit (default 0 = until interrupted)",
    )
    p_top.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-poll socket timeout in seconds (default 10)",
    )
    p_top.set_defaults(func=cmd_top)

    return parser


def main(argv: list[str] | None = None) -> int:
    from repro import obs

    parser = build_parser()
    args = parser.parse_args(argv)
    obs.configure_logging("DEBUG" if getattr(args, "verbose", False) else None)
    # --metrics is a first-class alias for REPRO_METRICS_PATH; the flag
    # wins over an ambient variable (explicit beats environment, same
    # precedence every other knob uses).  Installing it into the env
    # keeps worker processes and in-process chained commands consistent.
    if getattr(args, "metrics", None):
        os.environ["REPRO_METRICS_PATH"] = args.metrics
    # Same env installation for the dataset scale: subprocesses the
    # command spawns (bench probes, serve reloads) see the flag too.
    if getattr(args, "scale", None) is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    # And for the execution backend — every run_expectation call in
    # this process (and any child it spawns) sees the selection.  The
    # flag is validated eagerly so a typo fails at the CLI boundary.
    if getattr(args, "backend", None) is not None:
        from repro.engine import executors

        os.environ["REPRO_BACKEND"] = executors.resolve_backend(args.backend)
    # Each CLI invocation's metrics history starts clean (first call in
    # a process rotates any pre-existing sink file; chained in-process
    # commands keep appending to the fresh one).  ``trace`` is a pure
    # reader: rotating there would move aside the very file the user
    # asked it to analyze.
    if args.command != "trace":
        obs.rotate_existing()
    obs.profile.configure(getattr(args, "profile", None))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
