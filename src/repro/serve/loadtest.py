"""Concurrency-hammering load-test client for the resident server.

A thread pool over stdlib :mod:`http.client` — one keep-alive
connection per worker thread, reconnect on transport error — drives a
fixed request budget at a live server and reports latency percentiles
(nearest-rank p50/p95/p99), sustained RPS over the measured wall, an
error count (transport failures, HTTP >= 400, or non-JSON bodies), and
the *server-side* ``max_in_flight`` gauge fetched from ``/stats``
afterwards, which proves the requests actually overlapped rather than
serialized at the client.

All workers arm on a barrier so the clock starts when every connection
is ready, not while threads are still spawning; the wall excludes
setup and teardown.  ``repro loadtest`` is the CLI face; ``repro
bench`` drives the same entry point as the ``serve.loadtest`` bench.

SLO evaluation: ``repro loadtest --slo p99=50ms,error_rate=0.1%``
parses objectives (:func:`parse_slo`), evaluates the finished report
against them (:func:`evaluate_slo`), and reports each objective's
**burn** — observed / target, the fraction of the budget consumed, >1.0
meaning violated — alongside the server's own sliding-window view
pulled from ``/stats``.  Any violated objective exits nonzero, which is
what makes the flag usable as a CI gate.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from urllib.parse import urlsplit

from repro import obs

_log = obs.get_logger("repro.serve.loadtest")

#: The default request mix: two figure fetches (vector-tier work), a
#: composite /query document, and the two cheap control endpoints.
_DEFAULT_QUERY = json.dumps(
    {
        "kind": "fraction",
        "predicate": {
            "op": "all",
            "args": [
                {"op": "established", "value": True},
                {
                    "op": "not",
                    "arg": {"op": "version", "value": "SSLv3"},
                },
            ],
        },
        "within": {"op": "established", "value": True},
        "month": None,
    }
)


def default_workload() -> list[tuple[str, str, str | None]]:
    """(method, path, body) triples cycled by the worker threads."""
    return [
        ("GET", "/figures/fig1", None),
        ("GET", "/healthz", None),
        ("POST", "/query", _DEFAULT_QUERY),
        ("GET", "/figures/fig6", None),
        ("GET", "/stats", None),
    ]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (q in 0..100)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without floats
    return sorted_values[int(rank) - 1]


def _split_shares(total: int, buckets: int) -> list[int]:
    """``total`` requests split across ``buckets`` threads, off-by-none."""
    base, extra = divmod(total, buckets)
    return [base + (1 if i < extra else 0) for i in range(buckets)]


class _Worker:
    """One thread's share of the budget on one keep-alive connection."""

    def __init__(self, host, port, share, offset, workload, timeout, barrier):
        self.host = host
        self.port = port
        self.share = share
        self.offset = offset
        self.workload = workload
        self.timeout = timeout
        self.barrier = barrier
        self.latencies: list[float] = []
        self.statuses: dict[int, int] = {}
        self.errors = 0

    def _connect(self) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        conn.connect()
        # TCP_NODELAY: http.client writes headers and body as separate
        # packets; behind Nagle the second write waits on a delayed ACK
        # and every POST eats a ~40 ms stall.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def run(self) -> None:
        # A failed initial connect (wrong port, server gone) must NOT
        # kill the thread before the barrier — the main thread would
        # wait on it forever.  Count the share as errors and let the
        # per-request loop keep retrying the connect instead.
        try:
            conn = self._connect()
        except OSError:
            conn = None
        self.barrier.wait()
        for i in range(self.share):
            method, path, body = self.workload[
                (self.offset + i) % len(self.workload)
            ]
            headers = {}
            if body is not None:
                headers["Content-Type"] = "application/json"
            if conn is None:
                try:
                    conn = self._connect()
                except OSError:
                    self.errors += 1
                    continue
            started = time.perf_counter()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
            except OSError:
                self.errors += 1
                conn.close()
                conn = None
                continue
            self.latencies.append(time.perf_counter() - started)
            status = response.status
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status >= 400:
                self.errors += 1
                continue
            try:
                json.loads(payload)
            except (json.JSONDecodeError, UnicodeDecodeError):
                self.errors += 1
        if conn is not None:
            conn.close()


#: SLO objective names accepted by :func:`parse_slo`; the latency ones
#: map onto the report's ``*_ms`` keys.
SLO_LATENCY_OBJECTIVES = ("p50", "p95", "p99", "max")


def parse_slo(spec: str) -> dict:
    """Parse ``"p99=50ms,error_rate=0.1%"`` into objective targets.

    Latency objectives (``p50``/``p95``/``p99``/``max``) take ``ms`` or
    ``s`` suffixed values (bare numbers mean milliseconds) and become
    ``{name}_ms`` keys; ``error_rate`` takes a ``%``-suffixed or plain
    fraction.  Raises :class:`ValueError` on anything else — a typo'd
    SLO gate that silently checks nothing is worse than none.
    """
    objectives: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, eq, raw = part.partition("=")
        name, raw = name.strip().lower(), raw.strip().lower()
        if not eq or not raw:
            raise ValueError(f"SLO objective {part!r} is not name=value")
        if name in SLO_LATENCY_OBJECTIVES:
            if raw.endswith("ms"):
                value = float(raw[:-2])
            elif raw.endswith("s"):
                value = float(raw[:-1]) * 1e3
            else:
                value = float(raw)
            objectives[f"{name}_ms"] = value
        elif name == "error_rate":
            value = float(raw[:-1]) / 100.0 if raw.endswith("%") else float(raw)
            objectives["error_rate"] = value
        else:
            raise ValueError(
                f"unknown SLO objective {name!r}; choose from "
                f"{SLO_LATENCY_OBJECTIVES + ('error_rate',)}"
            )
    if not objectives:
        raise ValueError(f"SLO spec {spec!r} names no objectives")
    return objectives


def evaluate_slo(report: dict, objectives: dict) -> dict:
    """Evaluate a finished loadtest report against parsed objectives.

    Each objective reports its target, the observed value, and the
    **burn** (observed / target — the fraction of the error budget
    consumed; > 1.0 is a violation).  The top-level ``ok`` is the AND
    of every objective.
    """
    results: dict[str, dict] = {}
    ok = True
    for key, target in objectives.items():
        if key == "error_rate":
            observed = (
                report["errors"] / report["requests"]
                if report["requests"] else 0.0
            )
        else:
            observed = float(report[key])
        if target > 0:
            burn = observed / target
        else:
            burn = float("inf") if observed > 0 else 0.0
        passed = observed <= target
        ok = ok and passed
        results[key] = {
            "target": target,
            "observed": observed,
            "burn": burn,
            "ok": passed,
        }
    return {"ok": ok, "objectives": results}


def _server_window(host: str, port: int, timeout: float) -> dict | None:
    """The server's sliding-window telemetry from ``/stats`` (None if
    the target is not a repro server) — the burn report shows it next
    to the client-side numbers so a violation can be read as server
    latency vs. client/network overhead."""
    try:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        conn.request("GET", "/stats")
        payload = json.loads(conn.getresponse().read())
        conn.close()
        window = payload.get("window")
        return dict(window) if isinstance(window, dict) else None
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _server_gauge(host: str, port: int, timeout: float) -> int | None:
    """The server's max-in-flight gauge from ``/stats`` (None if
    unreachable — e.g. the target is not a repro server)."""
    try:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        conn.request("GET", "/stats")
        payload = json.loads(conn.getresponse().read())
        conn.close()
        return int(payload["server"]["max_in_flight"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def run_loadtest(
    url: str,
    requests: int = 2000,
    concurrency: int = 32,
    timeout: float = 30.0,
    workload: list[tuple[str, str, str | None]] | None = None,
    slo: dict | None = None,
) -> dict:
    """Hammer ``url`` and return the latency/RPS report dict.

    Report keys: ``url``, ``requests``, ``concurrency``, ``errors``,
    ``wall_seconds``, ``rps``, ``p50_ms``, ``p95_ms``, ``p99_ms``,
    ``max_ms``, ``statuses``, ``max_in_flight`` — plus ``slo`` (the
    :func:`evaluate_slo` result, with the server's sliding-window view
    attached as ``slo["window"]``) only when ``slo`` objectives are
    passed, so SLO-less reports keep their exact historical shape.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    concurrency = max(1, min(concurrency, requests))
    parts = urlsplit(url if "//" in url else f"http://{url}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80
    workload = workload or default_workload()

    barrier = threading.Barrier(concurrency + 1)
    workers = [
        _Worker(host, port, share, i, workload, timeout, barrier)
        for i, share in enumerate(_split_shares(requests, concurrency))
    ]
    threads = [
        threading.Thread(target=w.run, name=f"loadtest-{i}", daemon=True)
        for i, w in enumerate(workers)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    latencies = sorted(lat for w in workers for lat in w.latencies)
    statuses: dict[int, int] = {}
    for w in workers:
        for status, count in w.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
    errors = sum(w.errors for w in workers)
    report = {
        "url": f"http://{host}:{port}",
        "requests": requests,
        "concurrency": concurrency,
        "errors": errors,
        "wall_seconds": wall,
        "rps": (len(latencies) / wall) if wall > 0 else 0.0,
        "p50_ms": percentile(latencies, 50) * 1e3,
        "p95_ms": percentile(latencies, 95) * 1e3,
        "p99_ms": percentile(latencies, 99) * 1e3,
        "max_ms": (latencies[-1] * 1e3) if latencies else 0.0,
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "max_in_flight": _server_gauge(host, port, timeout),
    }
    if slo:
        verdict = evaluate_slo(report, slo)
        verdict["window"] = _server_window(host, port, timeout)
        report["slo"] = verdict
    _log.debug(
        "loadtest done: %d req, %d errors, %.0f rps",
        requests,
        errors,
        report["rps"],
    )
    return report


def render_report(report: dict) -> str:
    """Human-readable loadtest summary for the CLI."""
    lines = [
        f"loadtest {report['url']}",
        f"  requests      {report['requests']}"
        f"  (concurrency {report['concurrency']})",
        f"  errors        {report['errors']}",
        f"  wall          {report['wall_seconds']:.3f} s"
        f"  ({report['rps']:.0f} req/s sustained)",
        f"  latency p50   {report['p50_ms']:.2f} ms",
        f"  latency p95   {report['p95_ms']:.2f} ms",
        f"  latency p99   {report['p99_ms']:.2f} ms",
        f"  latency max   {report['max_ms']:.2f} ms",
        f"  statuses      {report['statuses']}",
    ]
    if report.get("max_in_flight") is not None:
        lines.append(f"  max in-flight {report['max_in_flight']} (server)")
    slo = report.get("slo")
    if slo is not None:
        lines.append(f"  slo           {'PASS' if slo['ok'] else 'FAIL'}")
        for name, result in slo["objectives"].items():
            unit = "" if name == "error_rate" else " ms"
            lines.append(
                f"    {name:<12}{'ok  ' if result['ok'] else 'FAIL'}"
                f" observed {result['observed']:.4g}{unit}"
                f" / target {result['target']:.4g}{unit}"
                f" (burn {result['burn']:.2f})"
            )
        window = slo.get("window")
        if window:
            lines.append(
                f"    server window ({window['seconds']:g}s): "
                f"p50 {window['p50_ms']:.2f} ms, "
                f"p95 {window['p95_ms']:.2f} ms, "
                f"p99 {window['p99_ms']:.2f} ms, "
                f"error rate {window['error_rate']:.4g}"
            )
    return "\n".join(lines)
