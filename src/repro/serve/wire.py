"""JSON wire format for the resident query service.

The query endpoint accepts *structured* predicates — the same
combinator objects :mod:`repro.notary.query` defines — encoded as JSON
objects, so a remote client can ask anything the in-process query tiers
can answer and the store resolves it through the identical four-tier
path (index counters → vectorized → shape-compiled → scan).

Predicate grammar (``op`` selects the node type)::

    {"op": "version",    "value": "TLSv12"}      NegotiatedVersion
    {"op": "mode",       "value": "AEAD"}        NegotiatedMode
    {"op": "kex",        "value": "ECDHE"}       NegotiatedKex (by name)
    {"op": "aead",       "value": "AES128-GCM"}  NegotiatedAead
    {"op": "advertises", "value": "rc4"}         Advertises
    {"op": "established", "value": true}         Established (value optional)
    {"op": "all", "args": [P, ...]}              All(*children)
    {"op": "any", "args": [P, ...]}              AnyOf(*children)
    {"op": "not", "arg": P}                      Not(child)

Value functions (for ``weighted_mean``)::

    {"op": "position_of", "tag": "aead"}         PositionOf

Query documents (``POST /query`` bodies)::

    {"kind": "fraction",      "predicate": P, "within": P|null, "month": "YYYY-MM-DD"|null}
    {"kind": "weight",        "predicate": P, "month": ...}
    {"kind": "total_weight",  "month": ...}
    {"kind": "weighted_mean", "value": V, "month": ...}

``month: null`` answers the whole series (one ``[iso-month, value]``
pair per store month).  Anything malformed — wrong types, unknown ops,
unknown keys, bad dates, excessive nesting — raises :class:`QueryError`,
which the server maps to HTTP 400; the query never reaches the store.

Float fidelity: results are serialized with the stdlib ``json`` encoder,
whose float formatting is ``repr``-based (shortest string that parses
back to the identical double).  A served value therefore equals the
in-process value *exactly* after the round trip — the property the
differential suite asserts.
"""

from __future__ import annotations

import datetime as _dt

from repro.notary import query as _q
from repro.tls.ciphers import KexFamily

#: Version of the HTTP API surface (response envelope ``api`` field);
#: bump on any backwards-incompatible endpoint or grammar change.
API_VERSION = 1

#: Depth/width caps: a query is a few combinators, not a program.
MAX_DEPTH = 32
MAX_CHILDREN = 64

#: The query kinds ``execute_query`` understands, in documentation order.
QUERY_KINDS = ("fraction", "weight", "total_weight", "weighted_mean")

_QUERY_KEYS = frozenset({"kind", "month", "predicate", "within", "value"})

_LEAF_OPS = {
    "version": _q.NegotiatedVersion,
    "mode": _q.NegotiatedMode,
    "aead": _q.NegotiatedAead,
    "advertises": _q.Advertises,
}


class QueryError(ValueError):
    """A malformed query document; the server answers HTTP 400."""


def decode_predicate(spec, depth: int = 0):
    """A query-module predicate from its JSON encoding (or raise)."""
    if depth > MAX_DEPTH:
        raise QueryError(f"predicate nesting exceeds {MAX_DEPTH} levels")
    if not isinstance(spec, dict):
        raise QueryError(
            f"predicate must be a JSON object, got {type(spec).__name__}"
        )
    op = spec.get("op")
    if not isinstance(op, str) or not op:
        raise QueryError("predicate needs a non-empty string 'op'")
    if op in _LEAF_OPS:
        value = spec.get("value")
        if not isinstance(value, str) or not value:
            raise QueryError(f"op {op!r} needs a non-empty string 'value'")
        return _LEAF_OPS[op](value)
    if op == "kex":
        value = spec.get("value")
        try:
            family = KexFamily[value]
        except (KeyError, TypeError):
            raise QueryError(
                f"unknown kex family {value!r}; choose from "
                f"{[family.name for family in KexFamily]}"
            ) from None
        return _q.NegotiatedKex(family)
    if op == "established":
        value = spec.get("value", True)
        if not isinstance(value, bool):
            raise QueryError("op 'established' takes a boolean 'value'")
        return _q.Established(value)
    if op in ("all", "any"):
        args = spec.get("args")
        if not isinstance(args, list):
            raise QueryError(f"op {op!r} needs a list 'args'")
        if len(args) > MAX_CHILDREN:
            raise QueryError(f"op {op!r} exceeds {MAX_CHILDREN} children")
        children = [decode_predicate(child, depth + 1) for child in args]
        return (_q.All if op == "all" else _q.AnyOf)(*children)
    if op == "not":
        arg = spec.get("arg")
        if arg is None:
            raise QueryError("op 'not' needs an 'arg' predicate")
        return _q.Not(decode_predicate(arg, depth + 1))
    raise QueryError(f"unknown predicate op {op!r}")


def decode_value(spec):
    """A ``weighted_mean`` value function from its JSON encoding."""
    if not isinstance(spec, dict):
        raise QueryError(
            f"value function must be a JSON object, got {type(spec).__name__}"
        )
    if spec.get("op") != "position_of":
        raise QueryError(
            f"unknown value-function op {spec.get('op')!r} "
            "(only 'position_of' is defined)"
        )
    tag = spec.get("tag")
    if not isinstance(tag, str) or not tag:
        raise QueryError("op 'position_of' needs a non-empty string 'tag'")
    return _q.PositionOf(tag)


def decode_month(raw) -> _dt.date | None:
    """A month date from its ISO encoding; ``None`` passes through."""
    if raw is None:
        return None
    if not isinstance(raw, str):
        raise QueryError(f"month must be a 'YYYY-MM-DD' string, got {raw!r}")
    try:
        return _dt.date.fromisoformat(raw)
    except ValueError:
        raise QueryError(f"month {raw!r} is not a YYYY-MM-DD date") from None


def execute_query(store, spec) -> dict:
    """Decode one query document and answer it from ``store``.

    Returns a JSON-safe result dict; raises :class:`QueryError` before
    touching the store when the document is malformed.  All aggregation
    goes through the store's public query methods, so the four-tier
    answer path (and its float-identity guarantee) applies unchanged.
    """
    if not isinstance(spec, dict):
        raise QueryError(
            f"query must be a JSON object, got {type(spec).__name__}"
        )
    unknown = set(spec) - _QUERY_KEYS
    if unknown:
        raise QueryError(f"unknown query key(s) {sorted(unknown)}")
    kind = spec.get("kind")
    month = decode_month(spec.get("month"))

    if kind == "total_weight":
        return _answer(kind, month, store, store.total_weight)
    if kind == "weighted_mean":
        value = decode_value(spec.get("value"))
        return _answer(kind, month, store, lambda m: store.weighted_mean(m, value))
    if kind in ("fraction", "weight"):
        predicate = decode_predicate(spec.get("predicate"))
        within_spec = spec.get("within")
        if kind == "weight":
            if within_spec is not None:
                raise QueryError("kind 'weight' does not take 'within'")
            return _answer(
                kind, month, store, lambda m: store.weight_where(m, predicate)
            )
        within = (
            decode_predicate(within_spec) if within_spec is not None else None
        )
        return _answer(
            kind, month, store, lambda m: store.fraction(m, predicate, within)
        )
    raise QueryError(
        f"unknown query kind {kind!r}; choose from {list(QUERY_KINDS)}"
    )


def _answer(kind: str, month: _dt.date | None, store, fn) -> dict:
    """One month's value, or the whole series when ``month`` is null."""
    if month is None:
        return {
            "kind": kind,
            "series": [[m.isoformat(), fn(m)] for m in store.months()],
        }
    return {"kind": kind, "month": month.isoformat(), "value": fn(month)}


def encode_series(series) -> dict:
    """A figure's ``{label: [(date, value), ...]}`` as JSON-safe lists."""
    return {
        label: [[m.isoformat(), v] for m, v in points]
        for label, points in series.items()
    }
