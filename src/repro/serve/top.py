"""``repro top <url>`` — a live terminal dashboard over ``/metrics``.

Polls the resident server's Prometheus exposition on an interval and
renders a refreshing one-screen summary: RPS and error rate over the
server's sliding window, in-flight gauges, per-route p50/p95/p99, the
query-tier mix, and the fault/retry counters.  Everything displayed is
*parsed back out of the exposition text* via
:func:`repro.obs.live.parse_prometheus` — the dashboard is deliberately
a second consumer of the same bytes Prometheus would scrape, so a
rendering bug that would corrupt real monitoring breaks ``repro top``
(and its tests) first.

Stdlib only, like the rest of the serve package: :mod:`http.client`
for the poll, ANSI home+clear for the refresh (suppressed when stdout
is not a terminal, so piping ``repro top --count 1`` stays clean).
"""

from __future__ import annotations

import http.client
import sys
import time
from urllib.parse import urlsplit

from repro.obs import live

#: ANSI: clear screen, cursor home — the whole "refresh".
_CLEAR = "\x1b[2J\x1b[H"


def fetch_metrics(url: str, timeout: float = 10.0) -> str:
    """One ``GET /metrics`` against ``url``; raises :class:`OSError`
    on transport failure and :class:`ValueError` on a non-200."""
    parts = urlsplit(url if "//" in url else f"http://{url}")
    conn = http.client.HTTPConnection(
        parts.hostname or "127.0.0.1", parts.port or 80, timeout=timeout
    )
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read()
        if response.status != 200:
            raise ValueError(
                f"/metrics answered {response.status}, not 200"
            )
        return body.decode("utf-8")
    finally:
        conn.close()


def _routes(families: dict) -> list[str]:
    """Route labels present in the window gauges (skipping the
    all-routes ``_total`` aggregate, which renders separately)."""
    family = families.get("repro_http_window_rps") or {"samples": []}
    seen = []
    for labels, _value in family["samples"]:
        route = labels.get("route")
        if route and route != "_total" and route not in seen:
            seen.append(route)
    return sorted(seen)


def render_dashboard(families: dict, url: str = "") -> str:
    """One screenful of dashboard text from parsed ``/metrics``."""

    def value(name: str, labels: dict | None = None) -> float:
        return live.sample_value(families, name, labels)

    def quantile_ms(route: str, quantile: str) -> float:
        return value(
            "repro_http_window_latency_seconds",
            {"route": route, "quantile": quantile},
        ) * 1e3

    uptime = value("repro_uptime_seconds")
    window_seconds = value("repro_http_window_seconds")
    lines = [
        f"repro top — {url}   uptime {uptime:.0f}s   "
        f"window {window_seconds:g}s",
        "",
        f"requests  {value('repro_http_requests_total'):.0f} total, "
        f"{value('repro_http_errors_total'):.0f} errors   "
        f"in-flight {value('repro_in_flight'):.0f} "
        f"(max {value('repro_max_in_flight'):.0f})   "
        f"queries {value('repro_queries_in_flight'):.0f} "
        f"(max {value('repro_max_queries_in_flight'):.0f})",
        f"window    {value('repro_http_window_rps', {'route': '_total'}):.1f} rps, "
        f"error rate {value('repro_http_window_error_rate'):.4g}, "
        f"p50 {quantile_ms('_total', '0.5'):.2f} ms, "
        f"p95 {quantile_ms('_total', '0.95'):.2f} ms, "
        f"p99 {quantile_ms('_total', '0.99'):.2f} ms",
        "",
        f"{'ROUTE':<20}{'RPS':>8}{'P50 MS':>10}{'P95 MS':>10}"
        f"{'P99 MS':>10}{'TOTAL':>10}",
    ]
    for route in _routes(families):
        lines.append(
            f"{route:<20}"
            f"{value('repro_http_window_rps', {'route': route}):>8.1f}"
            f"{quantile_ms(route, '0.5'):>10.2f}"
            f"{quantile_ms(route, '0.95'):>10.2f}"
            f"{quantile_ms(route, '0.99'):>10.2f}"
            f"{value('repro_http_route_requests_total', {'route': route}):>10.0f}"
        )
    tiers = families.get("repro_query_tier_total") or {"samples": []}
    if tiers["samples"]:
        mix = ", ".join(
            f"{labels.get('tier', '?')} {count:.0f}"
            for labels, count in sorted(
                tiers["samples"], key=lambda s: s[0].get("tier", "")
            )
        )
        lines += ["", f"tier mix  {mix}"]
    lines += [
        "",
        f"faults    {value('repro_faults_injected_total'):.0f} injected, "
        f"{value('repro_chunk_retries_total'):.0f} chunk retries, "
        f"{value('repro_worker_errors_total'):.0f} worker errors",
    ]
    return "\n".join(lines)


def run_top(
    url: str,
    interval: float = 2.0,
    iterations: int = 0,
    timeout: float = 10.0,
    out=None,
    clear: bool | None = None,
) -> int:
    """Poll-and-render until interrupted (``iterations`` > 0 bounds the
    loop; 0 means forever).  Returns 1 when the server is unreachable
    or serves a malformed exposition."""
    out = out if out is not None else sys.stdout
    if clear is None:
        clear = bool(getattr(out, "isatty", lambda: False)())
    shown = 0
    while True:
        try:
            families = live.parse_prometheus(fetch_metrics(url, timeout))
        except (OSError, ValueError) as exc:
            print(f"top: {url}: {exc}", file=sys.stderr)
            return 1
        if clear:
            out.write(_CLEAR)
        out.write(render_dashboard(families, url))
        out.write("\n")
        out.flush()
        shown += 1
        if iterations and shown >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
