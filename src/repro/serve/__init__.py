"""``repro.serve`` — the resident query service and its load-test client.

Everything before this package was one-shot CLI: every figure request
paid full process startup even though a warm packed dataset loads in
~60 ms and the vectorized query tier answers figures in microseconds.
This package keeps the dataset resident and serves it over HTTP:

* **Server** (:mod:`repro.serve.server`) — a stdlib
  ``ThreadingHTTPServer`` exposing ``/figures/<name>``, ``/query``,
  ``/stats``, and ``/healthz`` as versioned JSON endpoints over one
  shared immutable packed :class:`~repro.notary.store.NotaryStore`.
  Binds port 0 by default and announces the chosen port, so nothing
  ever hard-codes a port.
* **Wire grammar** (:mod:`repro.serve.wire`) — the JSON encoding of
  structured predicates (:mod:`repro.notary.query`) and aggregate
  query documents; decoding failures raise :class:`~repro.serve.wire.
  QueryError`, which the server maps to HTTP 400.
* **Load test** (:mod:`repro.serve.loadtest`) — a thread-pool client
  (``http.client`` with keep-alive) driving thousands of concurrent
  requests at a live server and reporting p50/p95/p99 latency,
  sustained RPS, and the server-side max-in-flight gauge.

All responses are JSON rendered with the stdlib encoder, whose float
formatting is ``repr``-based (shortest round-trip): a float survives
the HTTP round trip bit-for-bit, which is what lets the differential
suite in ``tests/test_serve.py`` assert *exact* equality between
served answers and in-process queries on the same store.
"""

from __future__ import annotations

from repro.serve.wire import API_VERSION, QueryError

__all__ = ["API_VERSION", "QueryError"]
