"""The resident query server behind ``python -m repro serve``.

A stdlib :class:`~http.server.ThreadingHTTPServer` (one handler thread
per connection, HTTP/1.1 keep-alive) holding exactly one
:class:`~repro.notary.store.NotaryStore` loaded at startup.  Endpoints,
all JSON with an ``{"api": 1, ...}`` envelope:

* ``GET /healthz`` — readiness: 200 once the dataset is attached, 503
  while it is still loading (the socket binds and answers *before* the
  load finishes, so orchestrators can poll), 500 if the load failed.
* ``GET /figures`` / ``GET /figures/<name>`` — the paper figures as
  month/value series.
* ``POST /query`` — a structured query document (:mod:`repro.serve.wire`);
  malformed documents answer 400 without touching the store.
* ``GET /stats`` — server gauges (in-flight, max-in-flight, uptime),
  the per-route latency ledger, the sliding-window telemetry section,
  and the full engine perf-counter snapshot (``stats --json`` schema).
* ``GET /metrics`` — Prometheus text exposition (format 0.0.4,
  hand-rolled in :mod:`repro.obs.live`): cumulative counters, gauges,
  per-route latency histograms with bucket exemplars, and
  sliding-window rates/quantiles.  The only non-JSON endpoint; each
  scrape also persists one ``histogram_snapshot`` event per route to
  the JSONL metrics sink when it is live.

Why the store is safe to share across handler threads: every served
aggregate goes through the store's read-only query methods over packed
months, and the service holds no mutating endpoint at all — the only
writes the query tiers perform are memo-cache fills.  Store access is
governed by **double-checked locking**: the first run of any given
query (keyed per figure name / canonical query document) happens under
the query lock, which covers the memo fills and the before/after
PERF-counter sampling that attributes the answering tier.  Once a
query's tier is known to be one of the lock-free-safe ones (index /
vector / shape — pure reads plus idempotent GIL-atomic memo fills),
repeat runs of that same query skip the lock entirely and execute
concurrently; scan-tier queries keep serializing, because the
materialization LRU mutates on every scan.  The
``max_queries_in_flight`` gauge counts overlap *inside* the query
phase — the 32-thread hammer asserts it exceeds 1 on a warm server
with byte-identical payloads.  (One blur this admits: a warm query's
PERF increments can land inside a concurrent cold query's sampling
window, so that cold query may report ``mixed``; misattribution only
ever makes a query *keep* the lock, never drop it unsafely.)

Request → span → sink flow: every request is timed and recorded four
ways — an ``http_request`` completed span on the process trace
collector (thread-safe append, no nesting stack involved), an
``http_request`` JSONL metrics event (method, route, status, duration,
tier used, span id) when ``REPRO_METRICS_PATH`` is live, the PERF
counters ``http_requests`` / ``http_errors`` plus the histogram-backed
per-route latency ledger surfaced by ``stats --json`` (schema 6), and
the sliding-window :class:`~repro.obs.live.LiveTelemetry` behind
``/metrics``.  The span's ``(trace_id, id)`` travels into the latency
histograms as the bucket *exemplar*, so a tail bucket on a dashboard
names the exact span to pull from the sink.  The *tier* is observed,
not guessed: the query runs under the query lock while the tier
counters are sampled before and after, so the event reports which of
index/vector/shape/scan actually answered.

Port discipline: the default bind is port 0 — the kernel picks a free
port, ``bound_port`` reports it, and the CLI announces it on stdout
(``serving on http://host:port``).  Nothing in the repo hard-codes a
port, which is what keeps parallel CI jobs collision-free.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro import obs
from repro.engine import executors
from repro.engine.perf import PERF
from repro.obs import live
from repro.serve import wire

_log = obs.get_logger("repro.serve.server")

#: Largest accepted ``/query`` body; queries are small documents.
MAX_BODY_BYTES = 1 << 20

#: How long a pooled query may take before the parent gives up on the
#: replica and answers in-thread instead (generous: it only fires when
#: a replica died or the host is badly overloaded).
QUERY_POOL_TIMEOUT = 120.0

#: The announce-line format the CLI prints and the smoke script parses.
ANNOUNCE_TEMPLATE = "serving on http://{host}:{port}"


def announce_line(host: str, port: int) -> str:
    return ANNOUNCE_TEMPLATE.format(host=host, port=port)


def _route_pattern(path: str) -> str:
    """The bounded-cardinality route key for the latency ledger."""
    path = path.rstrip("/") or "/"
    if path == "/figures" or path.startswith("/figures/"):
        return "/figures/<name>" if path != "/figures" else "/figures"
    if path in ("/healthz", "/stats", "/metrics", "/query"):
        return path
    return "<other>"


# ---- query-worker pool (the multi-process serve path) -----------------------
#
# ``repro serve --query-workers N`` forks N pre-warmed store replicas
# *after* the dataset loads, so every replica shares the loaded pages
# copy-on-write and answers from the same packed columns.  Handler
# threads dispatch ``/query`` and ``/figures`` evaluation to the pool
# through the executor interface (:mod:`repro.engine.executors`),
# escaping the GIL that serializes CPU-bound query evaluation on the
# threaded path.  Results cross back by pickle — float bit patterns
# survive exactly, so pooled answers are byte-identical to in-thread
# ones (the differential hammer runs against both modes).  Each job
# also ships the replica's per-query int-counter delta, which the
# parent folds under its perf lock: the counters reconcile exactly
# with what an in-thread evaluation would have counted.

_REPLICA: dict = {}


def _init_query_worker(store, trace_id: str | None = None) -> None:
    """Pool initializer: adopt the pre-warmed replica (inherited through
    fork memory — never pickled) and zero this process's counters so
    per-query deltas are clean."""
    _REPLICA["store"] = store
    PERF.reset()
    obs.TRACE.reset()
    if trace_id is not None:
        obs.adopt_trace(trace_id)


def _eval_query_job(job: tuple) -> dict:
    """Run one ("query", spec) / ("figure", name) job on the replica.

    Returns the raw result plus the observed tier and the replica's
    int-counter delta.  A :class:`~repro.serve.wire.QueryError` crosses
    the pool boundary unchanged (it pickles), so malformed documents
    still answer 400.
    """
    kind, payload = job
    store = _REPLICA["store"]
    before = PERF.snapshot_ints()
    tier_before = (
        PERF.vector_path_hits,
        PERF.shape_path_hits,
        PERF.scan_fallbacks,
    )
    if kind == "figure":
        from repro.core.figures import FIGURE_GENERATORS

        result = FIGURE_GENERATORS[payload](store)
    else:
        result = wire.execute_query(store, payload)
    tier_after = (
        PERF.vector_path_hits,
        PERF.shape_path_hits,
        PERF.scan_fallbacks,
    )
    after = PERF.snapshot_ints()
    delta = {
        name: after[name] - before[name]
        for name in after
        if after[name] != before.get(name, 0)
    }
    return {
        "result": result,
        "tier": _tier_of(tier_before, tier_after),
        "perf": delta,
    }


def _tier_of(before: tuple, after: tuple) -> str:
    """Which query tier answered, from a (vector, shape, scan) counter
    delta sampled around the query under the query lock.  No delta
    means every aggregate came from the O(1) index counters."""
    used = [
        name
        for name, b, a in zip(("vector", "shape", "scan"), before, after)
        if a > b
    ]
    if not used:
        return "index"
    if len(used) == 1:
        return used[0]
    return "mixed"


class ReproServer(ThreadingHTTPServer):
    """One shared store, many handler threads, read-only endpoints."""

    daemon_threads = True
    #: Listen backlog: the stdlib default of 5 drops connections when a
    #: 32-way load test opens its sockets in one burst.
    request_queue_size = 128

    def __init__(self, address=("127.0.0.1", 0), store=None, query_workers=0):
        super().__init__(address, ReproRequestHandler)
        self.store = store
        #: Requested size of the multi-process query pool (0 = the
        #: threaded path); the pool itself starts when the store is
        #: attached, so replicas fork pre-warmed.
        self.query_workers = max(0, int(query_workers))
        self.query_pool = None
        self.ready = threading.Event()
        if store is not None:
            self._start_query_pool()
            self.ready.set()
        self.load_error: str | None = None
        self.started_ts = time.time()
        self.in_flight = 0
        self.max_in_flight = 0
        #: Overlap inside the query phase specifically (not just the
        #: HTTP handler): warm lock-free queries running concurrently.
        self.queries_in_flight = 0
        self.max_queries_in_flight = 0
        self._gauge_lock = threading.Lock()
        #: Serializes *cold* store access: a query's first run fills
        #: memo caches and samples tier counters under this lock; see
        #: :meth:`run_query` for the warm lock-free fast path.
        self._query_lock = threading.Lock()
        #: memo key -> tier observed on that query's first (locked) run.
        self._warm_tiers: dict = {}
        #: Serializes PERF counter updates from handler threads.
        self._perf_lock = threading.Lock()
        #: Sliding-window live telemetry (per-route + global windows,
        #: tier totals) behind ``/metrics`` and the ``window`` section
        #: of ``/stats``.  Internally locked; no server lock needed.
        self.telemetry = live.LiveTelemetry()

    # ---- lifecycle ----------------------------------------------------------

    @property
    def bound_port(self) -> int:
        """The actual TCP port (the kernel's pick when bound to 0)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.bound_port}"

    def attach_store(self, store) -> None:
        """Make the dataset servable; flips ``/healthz`` to ready.

        The query pool (when requested) starts here — after the load —
        so replicas fork with the dataset already resident.
        """
        self.store = store
        self._start_query_pool()
        self.ready.set()

    def _start_query_pool(self) -> None:
        if self.query_workers < 1 or self.query_pool is not None:
            return
        if not executors.fork_available():
            # Pre-warmed replicas require inherited memory; a spawned
            # replica would re-load the dataset from scratch (and a
            # cache-loaded store's mmap-backed columns do not pickle).
            _log.warning(
                "--query-workers needs the fork start method; "
                "serving on the threaded path instead"
            )
            return
        self.query_pool = executors.create_executor(
            "fork",
            executors.WorkSpec(
                pool_fn=_eval_query_job,
                initializer=_init_query_worker,
                initargs=(self.store, obs.trace_id()),
            ),
            slots=self.query_workers,
        )
        _log.info(
            "query pool: %d pre-warmed store replica(s)", self.query_workers
        )

    def close_query_pool(self) -> None:
        pool, self.query_pool = self.query_pool, None
        if pool is not None:
            pool.close()

    def store_or_none(self):
        return self.store if self.ready.is_set() else None

    # ---- per-request accounting --------------------------------------------

    def gauge_enter(self) -> None:
        with self._gauge_lock:
            self.in_flight += 1
            if self.in_flight > self.max_in_flight:
                self.max_in_flight = self.in_flight

    def gauge_exit(self) -> None:
        with self._gauge_lock:
            self.in_flight -= 1

    def _query_enter(self) -> None:
        with self._gauge_lock:
            self.queries_in_flight += 1
            if self.queries_in_flight > self.max_queries_in_flight:
                self.max_queries_in_flight = self.queries_in_flight

    def _query_exit(self) -> None:
        with self._gauge_lock:
            self.queries_in_flight -= 1

    #: Tiers whose repeat runs are lock-free-safe: pure column/counter
    #: reads plus idempotent, GIL-atomic memo fills.  ``scan`` mutates
    #: the materialization LRU and ``mixed`` may include a scan.
    _LOCK_FREE_TIERS = frozenset({"index", "vector", "shape"})

    def run_query(self, fn, memo_key=None, job=None):
        """Run one store query; returns (result, tier used).

        With an active query pool and a ``job`` descriptor, evaluation
        is dispatched to a pre-warmed store replica process — no store
        lock at all, replicas are isolated — and the replica's counter
        delta folds back under the perf lock.  A failed dispatch falls
        back to the in-thread path below, so the pool can never make an
        answer worse, only concurrent.

        Otherwise, double-checked locking on ``memo_key``: the first
        run executes under the query lock (memo fills + exact tier
        attribution); once the memoized tier is known lock-free-safe,
        repeat runs of the same query skip the lock and overlap freely.
        Queries with no key, or whose tier involves a scan, always
        serialize.
        """
        if job is not None and self.query_pool is not None:
            pending = self.query_pool.submit(job)
            self._query_enter()
            try:
                part = pending.result(QUERY_POOL_TIMEOUT)
            except wire.QueryError:
                with self._perf_lock:
                    PERF.query_pool_dispatches += 1
                raise
            except Exception as exc:
                _log.warning(
                    "query pool dispatch failed (%s: %s); answering "
                    "in-thread",
                    type(exc).__name__,
                    exc,
                )
                with self._perf_lock:
                    PERF.query_pool_dispatches += 1
                    PERF.query_pool_fallbacks += 1
                return self.run_query(fn, memo_key=memo_key)
            finally:
                self._query_exit()
            with self._perf_lock:
                PERF.query_pool_dispatches += 1
                PERF.add_ints(part["perf"])
            return part["result"], part["tier"]
        if memo_key is not None:
            tier = self._warm_tiers.get(memo_key)
            if tier in self._LOCK_FREE_TIERS:
                self._query_enter()
                try:
                    return fn(), tier
                finally:
                    self._query_exit()
        with self._query_lock:
            self._query_enter()
            try:
                before = (
                    PERF.vector_path_hits,
                    PERF.shape_path_hits,
                    PERF.scan_fallbacks,
                )
                result = fn()
                after = (
                    PERF.vector_path_hits,
                    PERF.shape_path_hits,
                    PERF.scan_fallbacks,
                )
            finally:
                self._query_exit()
        tier = _tier_of(before, after)
        if memo_key is not None:
            if len(self._warm_tiers) >= 1024:
                self._warm_tiers.clear()
            self._warm_tiers[memo_key] = tier
        return result, tier

    def observe_request(
        self,
        method: str,
        route: str,
        status: int,
        duration: float,
        tier: str | None,
        started_ts: float,
    ) -> None:
        span_id = obs.TRACE.record_complete(
            "http_request",
            started_ts,
            duration,
            method=method,
            route=route,
            status=status,
            tier=tier,
        )
        exemplar = {
            "trace_id": obs.trace_id(),
            "span_id": span_id,
            "route": route,
            "value": duration,
            "ts": started_ts,
        }
        with self._perf_lock:
            PERF.observe_http(route, duration, status, exemplar=exemplar)
        self.telemetry.observe(
            route, duration, status, tier=tier, exemplar=exemplar
        )
        obs.emit_event(
            "http_request",
            method=method,
            route=route,
            status=status,
            duration=duration,
            tier=tier,
            span_id=span_id,
        )

    # ---- endpoint payloads --------------------------------------------------

    def health_payload(self) -> tuple[int, dict, None]:
        if self.load_error is not None:
            return 500, {
                "status": "error",
                "ready": False,
                "error": self.load_error,
            }, None
        store = self.store_or_none()
        if store is None:
            return 503, {"status": "loading", "ready": False}, None
        return 200, {
            "status": "ok",
            "ready": True,
            "months": len(store.months()),
            "records": len(store),
        }, None

    def stats_payload(self) -> dict:
        from repro.cli import STATS_SCHEMA

        store = self.store_or_none()
        with self._perf_lock:
            counters = PERF.snapshot()
        with self._gauge_lock:
            in_flight, max_in_flight = self.in_flight, self.max_in_flight
            queries_in_flight = self.queries_in_flight
            max_queries_in_flight = self.max_queries_in_flight
        return {
            "schema": STATS_SCHEMA,
            "server": {
                "started": self.started_ts,
                "uptime_seconds": time.time() - self.started_ts,
                "ready": store is not None,
                "requests": counters["http_requests"],
                "errors": counters["http_errors"],
                "in_flight": in_flight,
                "max_in_flight": max_in_flight,
                "queries_in_flight": queries_in_flight,
                "max_queries_in_flight": max_queries_in_flight,
                "routes": counters["http_route_latency"],
            },
            "dataset": (
                {"months": len(store.months()), "records": len(store)}
                if store is not None
                else None
            ),
            "counters": counters,
            "window": self.telemetry.window_payload(),
        }

    def metrics_payload(self) -> str:
        """The ``GET /metrics`` Prometheus text exposition.

        Cumulative counters and per-route histograms come from the PERF
        snapshot; rates and quantiles come from the sliding window (the
        ``_total`` route label is the all-routes aggregate).  Each
        scrape also persists one ``histogram_snapshot`` event per route
        to the JSONL sink when it is live, so offline tooling sees the
        same distributions Prometheus would.
        """
        with self._perf_lock:
            counters = PERF.snapshot()
        with self._gauge_lock:
            in_flight, max_in_flight = self.in_flight, self.max_in_flight
            queries_in_flight = self.queries_in_flight
            max_queries_in_flight = self.max_queries_in_flight
        window = self.telemetry.window_payload()
        families: list[live.MetricFamily] = []

        def scalar(name, kind, help_text, value):
            family = live.MetricFamily(name, kind, help_text)
            family.add(value)
            families.append(family)

        scalar(
            "repro_http_requests_total", "counter",
            "HTTP requests served (any status).", counters["http_requests"],
        )
        scalar(
            "repro_http_errors_total", "counter",
            "HTTP responses with status >= 400.", counters["http_errors"],
        )
        scalar(
            "repro_faults_injected_total", "counter",
            "Faults fired by the injection plan.",
            counters["faults_injected"],
        )
        scalar(
            "repro_chunk_retries_total", "counter",
            "Chunk attempts re-queued after a failure.",
            counters["chunk_retries"],
        )
        scalar(
            "repro_worker_errors_total", "counter",
            "Worker exceptions observed by the parent scheduler.",
            counters["worker_errors"],
        )
        scalar(
            "repro_uptime_seconds", "gauge",
            "Seconds since the server started.",
            time.time() - self.started_ts,
        )
        scalar(
            "repro_in_flight", "gauge",
            "HTTP requests currently being handled.", in_flight,
        )
        scalar(
            "repro_max_in_flight", "gauge",
            "High-water mark of concurrent HTTP requests.", max_in_flight,
        )
        scalar(
            "repro_queries_in_flight", "gauge",
            "Store queries currently executing.", queries_in_flight,
        )
        scalar(
            "repro_max_queries_in_flight", "gauge",
            "High-water mark of concurrent store queries.",
            max_queries_in_flight,
        )

        tiers = live.MetricFamily(
            "repro_query_tier_total", "counter",
            "Requests answered, by the query tier that answered them.",
        )
        for tier, count in sorted(window["tier_totals"].items()):
            tiers.add(count, {"tier": tier})
        families.append(tiers)

        route_requests = live.MetricFamily(
            "repro_http_route_requests_total", "counter",
            "HTTP requests served, per route.",
        )
        route_errors = live.MetricFamily(
            "repro_http_route_errors_total", "counter",
            "HTTP responses with status >= 400, per route.",
        )
        durations = live.MetricFamily(
            "repro_http_request_duration_seconds", "histogram",
            "Request latency per route (process-lifetime cumulative).",
        )
        ledger = counters["http_route_latency"]
        for route in sorted(ledger):
            entry = ledger[route]
            route_requests.add(entry["count"], {"route": route})
            route_errors.add(entry["errors"], {"route": route})
            durations.add_histogram(entry["histogram"], {"route": route})
        families.extend([route_requests, route_errors, durations])

        window_latency = live.MetricFamily(
            "repro_http_window_latency_seconds", "gauge",
            f"Latency quantiles over the trailing {window['seconds']:g}s "
            "window (_total = all routes).",
        )
        window_rps = live.MetricFamily(
            "repro_http_window_rps", "gauge",
            "Requests per second over the trailing window.",
        )
        quantiles = (("0.5", "p50_ms"), ("0.95", "p95_ms"), ("0.99", "p99_ms"))
        for quantile, key in quantiles:
            window_latency.add(
                window[key] / 1e3, {"route": "_total", "quantile": quantile}
            )
        window_rps.add(window["rps"], {"route": "_total"})
        for route, stats in sorted(window["routes"].items()):
            for quantile, key in quantiles:
                window_latency.add(
                    stats[key] / 1e3, {"route": route, "quantile": quantile}
                )
            window_rps.add(stats["rps"], {"route": route})
        families.extend([window_latency, window_rps])
        scalar(
            "repro_http_window_error_rate", "gauge",
            "Errors / requests over the trailing window (all routes).",
            window["error_rate"],
        )
        scalar(
            "repro_http_window_seconds", "gauge",
            "Span of the sliding window.", window["seconds"],
        )

        if obs.metrics_enabled():
            for route in sorted(ledger):
                snap = ledger[route]["histogram"]
                cumulative, total = [], 0
                for n in snap["counts"]:
                    total += n
                    cumulative.append(total)
                obs.emit_event(
                    "histogram_snapshot",
                    name="http_request_duration_seconds",
                    route=route,
                    bounds=snap["bounds"],
                    buckets=cumulative,
                    count=snap["count"],
                    sum=snap["sum"],
                    exemplars=snap["exemplars"],
                )
        return live.render_prometheus(families)


class ReproRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    #: TCP_NODELAY on the accepted socket (``StreamRequestHandler.setup``
    #: reads this off the *handler*, not the server): each response is
    #: written as a headers segment then a body segment, and with Nagle
    #: on, the body sits behind the client's delayed ACK — a ~40 ms
    #: stall on every keep-alive request after the first.
    disable_nagle_algorithm = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        _log.debug("%s - %s", self.address_string(), format % args)

    def do_GET(self):  # noqa: N802 - stdlib dispatch name
        self._handle("GET")

    def do_POST(self):  # noqa: N802
        self._handle("POST")

    def _handle(self, method: str) -> None:
        server: ReproServer = self.server
        started_ts = time.time()
        started = time.perf_counter()
        server.gauge_enter()
        path = urlsplit(self.path).path
        route = _route_pattern(path)
        status, tier = 500, None
        try:
            try:
                status, payload, tier = self._dispatch(method, path)
            except wire.QueryError as exc:
                status, payload = 400, {"error": str(exc)}
            except Exception as exc:
                _log.exception("handler failed for %s %s", method, path)
                status = 500
                payload = {"error": f"{type(exc).__name__}: {exc}"}
            if isinstance(payload, str):
                # /metrics: Prometheus text exposition, not the JSON
                # envelope every other endpoint wears.
                body = payload.encode("utf-8")
                content_type = live.PROMETHEUS_CONTENT_TYPE
            else:
                body = json.dumps(
                    {"api": wire.API_VERSION, **payload}
                ).encode("utf-8")
                content_type = "application/json"
            try:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                self.close_connection = True
        finally:
            server.gauge_exit()
            server.observe_request(
                method,
                route,
                status,
                time.perf_counter() - started,
                tier,
                started_ts,
            )

    # ---- routing ------------------------------------------------------------

    def _dispatch(
        self, method: str, path: str
    ) -> tuple[int, dict | str, str | None]:
        server: ReproServer = self.server
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return server.health_payload()
        if path == "/stats":
            if method != "GET":
                return self._method_not_allowed("GET")
            return 200, server.stats_payload(), None
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            return 200, server.metrics_payload(), None
        if path == "/figures" or path.startswith("/figures/"):
            if method != "GET":
                return self._method_not_allowed("GET")
            name = path[len("/figures/"):] if path != "/figures" else None
            return self._figures(name)
        if path == "/query":
            if method != "POST":
                return self._method_not_allowed("POST")
            return self._query()
        return 404, {"error": f"unknown route {path!r}"}, None

    def _method_not_allowed(self, allowed: str) -> tuple[int, dict, None]:
        return 405, {"error": f"method not allowed; use {allowed}"}, None

    def _loading(self) -> tuple[int, dict, None]:
        return 503, {"status": "loading", "error": "dataset still loading"}, None

    def _figures(self, name: str | None) -> tuple[int, dict, str | None]:
        from repro.core.figures import FIGURE_GENERATORS

        server: ReproServer = self.server
        if name is None:
            return 200, {"figures": sorted(FIGURE_GENERATORS)}, None
        generator = FIGURE_GENERATORS.get(name)
        if generator is None:
            return 404, {
                "error": (
                    f"unknown figure {name!r}; "
                    f"choose from {sorted(FIGURE_GENERATORS)}"
                )
            }, None
        store = server.store_or_none()
        if store is None:
            return self._loading()
        series, tier = server.run_query(
            lambda: generator(store),
            memo_key=("figure", name),
            job=("figure", name),
        )
        return 200, {
            "figure": name,
            "series": wire.encode_series(series),
        }, tier

    def _query(self) -> tuple[int, dict, str | None]:
        server: ReproServer = self.server
        store = server.store_or_none()
        if store is None:
            return self._loading()
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise wire.QueryError("Content-Length is not an integer") from None
        if length <= 0:
            raise wire.QueryError("empty request body; POST a query document")
        if length > MAX_BODY_BYTES:
            raise wire.QueryError(
                f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            spec = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise wire.QueryError(f"body is not valid JSON: {exc}") from None
        result, tier = server.run_query(
            lambda: wire.execute_query(store, spec),
            memo_key=("query", json.dumps(spec, sort_keys=True)),
            job=("query", spec),
        )
        return 200, result, tier


# ---- embedding API ----------------------------------------------------------


class ServerHandle:
    """A started server: its port, URL, readiness, and shutdown."""

    def __init__(self, server: ReproServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.bound_port

    @property
    def url(self) -> str:
        return self.server.url

    def wait_ready(self, timeout: float = 120.0) -> bool:
        """Block until the dataset is attached (or the timeout passes)."""
        return self.server.ready.wait(timeout)

    def close(self) -> None:
        """Graceful shutdown: stop accepting, join, release the socket."""
        self.server.shutdown()
        self.thread.join(timeout=10)
        self.server.server_close()
        self.server.close_query_pool()


def start_server(
    store=None,
    loader=None,
    host: str = "127.0.0.1",
    port: int = 0,
    query_workers: int = 0,
) -> ServerHandle:
    """Bind (port 0 by default), serve on a background thread, return
    the handle — ``handle.port`` is the kernel-chosen port.

    Exactly one of ``store`` (serve immediately) or ``loader`` (a
    zero-argument callable built on a *separate* loader thread; the
    server answers 503 on data endpoints until it returns) must be
    given.  A loader failure is captured on ``server.load_error`` and
    surfaces as a 500 ``/healthz`` — the socket keeps answering so the
    failure is observable instead of a connection refusal.
    """
    if (store is None) == (loader is None):
        raise ValueError("pass exactly one of store= or loader=")
    server = ReproServer((host, port), store=store, query_workers=query_workers)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
        name="repro-serve",
    )
    thread.start()
    if loader is not None:
        def _load() -> None:
            try:
                server.attach_store(loader())
            except Exception as exc:
                _log.exception("dataset load failed; serving errors")
                server.load_error = f"{type(exc).__name__}: {exc}"

        threading.Thread(
            target=_load, daemon=True, name="repro-serve-loader"
        ).start()
    return server and ServerHandle(server, thread)
