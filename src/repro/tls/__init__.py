"""TLS protocol substrate.

Everything a passive monitor or active scanner needs to speak about TLS:
protocol versions, the IANA cipher-suite registry with classification
predicates, extension and named-curve registries, GREASE handling, the
Client Hello / Server Hello message models with a binary wire codec, and
the server-side negotiation logic.

This package is self-contained: it performs no I/O and has no third-party
dependencies.
"""

from repro.tls.versions import (
    ProtocolVersion,
    SSL2,
    SSL3,
    TLS10,
    TLS11,
    TLS12,
    TLS13,
    ALL_VERSIONS,
    version_by_name,
    version_by_wire,
)
from repro.tls.ciphers import (
    CipherSuite,
    KeyExchange,
    Authentication,
    Encryption,
    CipherMode,
    REGISTRY,
    suite_by_code,
    suite_by_name,
    suites_by_predicate,
)
from repro.tls.extensions import Extension, ExtensionType, EXTENSION_REGISTRY
from repro.tls.curves import NamedCurve, CURVE_REGISTRY, curve_by_code, curve_by_name
from repro.tls.grease import is_grease, grease_values, strip_grease
from repro.tls.messages import ClientHello, ServerHello, Alert, AlertDescription
from repro.tls.handshake import (
    HandshakeResult,
    HandshakeFailure,
    negotiate,
    SelectionPolicy,
)

__all__ = [
    "ProtocolVersion",
    "SSL2",
    "SSL3",
    "TLS10",
    "TLS11",
    "TLS12",
    "TLS13",
    "ALL_VERSIONS",
    "version_by_name",
    "version_by_wire",
    "CipherSuite",
    "KeyExchange",
    "Authentication",
    "Encryption",
    "CipherMode",
    "REGISTRY",
    "suite_by_code",
    "suite_by_name",
    "suites_by_predicate",
    "Extension",
    "ExtensionType",
    "EXTENSION_REGISTRY",
    "NamedCurve",
    "CURVE_REGISTRY",
    "curve_by_code",
    "curve_by_name",
    "is_grease",
    "grease_values",
    "strip_grease",
    "ClientHello",
    "ServerHello",
    "Alert",
    "AlertDescription",
    "HandshakeResult",
    "HandshakeFailure",
    "negotiate",
    "SelectionPolicy",
]
