"""The protocol-fallback "downgrade dance" and its exploitation.

Browsers of the BEAST/POODLE era retried failed handshakes at
successively lower protocol versions (the *downgrade dance*), because
version-intolerant servers and middleboxes would otherwise break.
POODLE (§2.2) weaponized this: a man-in-the-middle drops the initial
handshakes until the client retries at SSL 3, whose CBC padding is
exploitable.  The countermeasures the paper tracks are (i) removing the
SSL 3 fallback entirely (Table 6's "SSL 3 fallback removed" rows) and
(ii) TLS_FALLBACK_SCSV (RFC 7507), which lets an up-to-date server
detect and refuse a dance that it did not cause.

This module simulates the dance: a client ladder, an optional active
attacker, and a server profile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.clients.profile import ClientRelease
from repro.servers.config import ServerProfile
from repro.tls.handshake import FALLBACK_SCSV, HandshakeResult
from repro.tls.messages import ClientHello
from repro.tls.versions import SSL3, TLS10, TLS11, TLS12, is_tls13_variant


class FallbackOutcome(enum.Enum):
    """How a downgrade dance ended."""

    FIRST_TRY = "first_try"          # no fallback needed
    FELL_BACK = "fell_back"          # succeeded at a lower version
    REFUSED_SCSV = "refused_scsv"    # server caught the dance via SCSV
    EXHAUSTED = "exhausted"          # no version worked


@dataclass(frozen=True)
class DanceResult:
    """Outcome of a (possibly attacked) connection attempt."""

    outcome: FallbackOutcome
    attempts: int
    final: HandshakeResult | None
    attacked: bool = False

    @property
    def established(self) -> bool:
        return self.final is not None and self.final.established

    @property
    def negotiated_wire(self) -> int | None:
        if self.final is None:
            return None
        return self.final.version_wire

    @property
    def poodle_exposed(self) -> bool:
        """True when the dance landed on SSL 3 with a CBC suite —
        the precondition of the POODLE exploit."""
        if self.final is None or not self.established:
            return False
        suite = self.final.suite
        return (
            self.negotiated_wire == SSL3.wire
            and suite is not None
            and suite.is_cbc
        )


def fallback_ladder(release: ClientRelease) -> list[int]:
    """The version ladder a release retries, highest first.

    Clients whose ``ssl3_fallback`` flag is cleared stop at TLS 1.0
    (the Table 6 mitigation); TLS 1.3-era clients do not dance at all
    (their real version lives in ``supported_versions``).
    """
    ladder = [
        wire
        for wire in (TLS12.wire, TLS11.wire, TLS10.wire)
        if wire <= release.max_version
    ]
    if release.ssl3_fallback:
        ladder.append(SSL3.wire)
    return ladder


def _hello_at(hello: ClientHello, version: int, send_scsv: bool) -> ClientHello:
    suites = hello.cipher_suites
    if send_scsv and FALLBACK_SCSV not in suites:
        suites = suites + (FALLBACK_SCSV,)
    if not send_scsv:
        suites = tuple(c for c in suites if c != FALLBACK_SCSV)
    return replace(
        hello,
        legacy_version=version,
        cipher_suites=suites,
        supported_versions=(),
    )


def downgrade_dance(
    release: ClientRelease,
    server: ServerProfile,
    hello: ClientHello | None = None,
    attacker_drops: int = 0,
    send_scsv: bool = True,
) -> DanceResult:
    """Run the retry ladder against a server, optionally under attack.

    Args:
        release: The client (provides the ladder and base hello).
        server: The server profile answering.
        hello: Optional pre-built hello (defaults to the release's).
        attacker_drops: A MITM drops this many leading handshake
            attempts — POODLE's forcing move.
        send_scsv: Whether the client appends TLS_FALLBACK_SCSV on
            retries (RFC 7507 deployed).

    Returns:
        A :class:`DanceResult`; ``poodle_exposed`` reports whether the
        attacker achieved the SSL3+CBC precondition.
    """
    base = hello if hello is not None else release.build_hello()
    ladder = fallback_ladder(release)
    attempts = 0
    attacked = attacker_drops > 0
    for index, version in enumerate(ladder):
        attempts += 1
        if attempts <= attacker_drops:
            # The attacker drops the flight; the client sees a timeout
            # and retries lower.
            continue
        attempt_hello = _hello_at(base, version, send_scsv=send_scsv and index > 0)
        result = server.respond(attempt_hello)
        if result.ok:
            outcome = (
                FallbackOutcome.FIRST_TRY if index == 0 else FallbackOutcome.FELL_BACK
            )
            return DanceResult(outcome, attempts, result, attacked)
        if (
            result.alert is not None
            and result.alert.description.name == "INAPPROPRIATE_FALLBACK"
        ):
            return DanceResult(FallbackOutcome.REFUSED_SCSV, attempts, None, attacked)
        # PROTOCOL_VERSION or HANDSHAKE_FAILURE: walk down the ladder.
    return DanceResult(FallbackOutcome.EXHAUSTED, attempts, None, attacked)


def poodle_attack_succeeds(
    release: ClientRelease,
    server: ServerProfile,
    send_scsv: bool = False,
) -> bool:
    """Whether a POODLE MITM can force this client/server pair to SSL 3.

    The attacker drops every attempt above SSL 3; success requires the
    client to still have the SSL 3 rung, the server to accept SSL 3
    with a CBC suite, and the SCSV check to not fire.
    """
    ladder = fallback_ladder(release)
    if SSL3.wire not in ladder:
        return False
    result = downgrade_dance(
        release,
        server,
        attacker_drops=len(ladder) - 1,
        send_scsv=send_scsv,
    )
    return result.poodle_exposed
