"""SSL 2.0 CLIENT-HELLO codec.

SSL 2 predates the TLS record layer entirely: its records carry a
2-byte length with the high bit set, the CLIENT-HELLO is message type
1, and cipher kinds are 3-byte values (§5.1 of the paper still observed
1.2K SSL 2 connections per month in 2018, all terminating at one
university's Nagios servers).  The Notary must at least recognize these
relics, so the codec is implemented at parsing fidelity.

Reference: "The SSL Protocol" (Hickman, 1995), RFC 6101 appendix.
"""

from __future__ import annotations

from dataclasses import dataclass

MSG_CLIENT_HELLO = 0x01
SSL2_VERSION = 0x0002

# 3-byte SSL 2 cipher kinds.
SSL_CK_RC4_128_WITH_MD5 = 0x010080
SSL_CK_RC4_128_EXPORT40_WITH_MD5 = 0x020080
SSL_CK_RC2_128_CBC_WITH_MD5 = 0x030080
SSL_CK_RC2_128_CBC_EXPORT40_WITH_MD5 = 0x040080
SSL_CK_IDEA_128_CBC_WITH_MD5 = 0x050080
SSL_CK_DES_64_CBC_WITH_MD5 = 0x060040
SSL_CK_DES_192_EDE3_CBC_WITH_MD5 = 0x0700C0

CIPHER_KIND_NAMES: dict[int, str] = {
    SSL_CK_RC4_128_WITH_MD5: "SSL_CK_RC4_128_WITH_MD5",
    SSL_CK_RC4_128_EXPORT40_WITH_MD5: "SSL_CK_RC4_128_EXPORT40_WITH_MD5",
    SSL_CK_RC2_128_CBC_WITH_MD5: "SSL_CK_RC2_128_CBC_WITH_MD5",
    SSL_CK_RC2_128_CBC_EXPORT40_WITH_MD5: "SSL_CK_RC2_128_CBC_EXPORT40_WITH_MD5",
    SSL_CK_IDEA_128_CBC_WITH_MD5: "SSL_CK_IDEA_128_CBC_WITH_MD5",
    SSL_CK_DES_64_CBC_WITH_MD5: "SSL_CK_DES_64_CBC_WITH_MD5",
    SSL_CK_DES_192_EDE3_CBC_WITH_MD5: "SSL_CK_DES_192_EDE3_CBC_WITH_MD5",
}

_EXPORT_KINDS = frozenset(
    {SSL_CK_RC4_128_EXPORT40_WITH_MD5, SSL_CK_RC2_128_CBC_EXPORT40_WITH_MD5}
)


class Ssl2DecodeError(ValueError):
    """Raised on malformed SSL 2 data."""


@dataclass(frozen=True)
class Ssl2ClientHello:
    """An SSL 2.0 CLIENT-HELLO message."""

    version: int = SSL2_VERSION
    cipher_kinds: tuple[int, ...] = (SSL_CK_RC4_128_WITH_MD5,)
    session_id: bytes = b""
    challenge: bytes = b"\x00" * 16

    def kind_names(self) -> tuple[str, ...]:
        return tuple(
            CIPHER_KIND_NAMES.get(kind, f"unknown_{kind:#08x}")
            for kind in self.cipher_kinds
        )

    @property
    def offers_export(self) -> bool:
        return any(kind in _EXPORT_KINDS for kind in self.cipher_kinds)


def encode_client_hello(hello: Ssl2ClientHello) -> bytes:
    """Encode a CLIENT-HELLO with its 2-byte SSL 2 record header."""
    if not 16 <= len(hello.challenge) <= 32:
        raise ValueError("SSL2 challenge must be 16-32 bytes")
    specs = b"".join(kind.to_bytes(3, "big") for kind in hello.cipher_kinds)
    body = (
        bytes([MSG_CLIENT_HELLO])
        + hello.version.to_bytes(2, "big")
        + len(specs).to_bytes(2, "big")
        + len(hello.session_id).to_bytes(2, "big")
        + len(hello.challenge).to_bytes(2, "big")
        + specs
        + hello.session_id
        + hello.challenge
    )
    if len(body) > 0x7FFF:
        raise ValueError("SSL2 record too large")
    header = (0x8000 | len(body)).to_bytes(2, "big")
    return header + body


def decode_client_hello(data: bytes) -> Ssl2ClientHello:
    """Decode an SSL 2 record containing a CLIENT-HELLO."""
    if len(data) < 2:
        raise Ssl2DecodeError("truncated SSL2 record header")
    header = int.from_bytes(data[:2], "big")
    if not header & 0x8000:
        raise Ssl2DecodeError("not a 2-byte-header SSL2 record")
    length = header & 0x7FFF
    body = data[2:]
    if len(body) != length:
        raise Ssl2DecodeError(f"record length mismatch: {len(body)} != {length}")
    if len(body) < 9:
        raise Ssl2DecodeError("truncated CLIENT-HELLO")
    if body[0] != MSG_CLIENT_HELLO:
        raise Ssl2DecodeError(f"not a CLIENT-HELLO (msg type {body[0]})")
    version = int.from_bytes(body[1:3], "big")
    spec_len = int.from_bytes(body[3:5], "big")
    sid_len = int.from_bytes(body[5:7], "big")
    challenge_len = int.from_bytes(body[7:9], "big")
    if spec_len % 3 != 0:
        raise Ssl2DecodeError("cipher-spec length not a multiple of 3")
    expected = 9 + spec_len + sid_len + challenge_len
    if len(body) != expected:
        raise Ssl2DecodeError(f"CLIENT-HELLO length mismatch: {len(body)} != {expected}")
    offset = 9
    kinds = tuple(
        int.from_bytes(body[offset + i : offset + i + 3], "big")
        for i in range(0, spec_len, 3)
    )
    offset += spec_len
    session_id = body[offset : offset + sid_len]
    offset += sid_len
    challenge = body[offset : offset + challenge_len]
    return Ssl2ClientHello(
        version=version,
        cipher_kinds=kinds,
        session_id=session_id,
        challenge=challenge,
    )


def looks_like_ssl2(data: bytes) -> bool:
    """Cheap sniff a passive monitor uses to classify a first flight."""
    return (
        len(data) >= 5
        and bool(data[0] & 0x80)
        and data[2] == MSG_CLIENT_HELLO
        and int.from_bytes(data[3:5], "big") in (SSL2_VERSION, 0x0300, 0x0301)
    )
