"""IANA TLS cipher-suite registry and classification.

The registry maps 16-bit IANA code points to :class:`CipherSuite` objects
whose structured properties (key exchange, authentication, encryption
algorithm, mode, MAC) are derived by parsing the IANA suite name — the
same approach taken by zgrab and Zeek.  On top of the structure sit the
classification predicates the paper's analysis needs: RC4 / CBC / AEAD
(Figures 2-5), export / anonymous / NULL (Figure 7, §6.1, §6.2),
DES / 3DES (Sweet32, §5.6), forward secrecy and key-exchange family
(Figure 8), and the AEAD algorithm breakdown (Figures 9, 10).

SSL 2 used an incompatible 24-bit cipher-kind encoding and is not part of
the IANA registry; the paper's datasets do not analyse SSL 2 suites either
(§5.1: Censys does not scan SSL 2), so we follow suit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class KeyExchange(enum.Enum):
    """Key-exchange mechanism of a cipher suite."""

    NULL = "NULL"
    RSA = "RSA"
    DH_DSS = "DH_DSS"
    DH_RSA = "DH_RSA"
    DHE_DSS = "DHE_DSS"
    DHE_RSA = "DHE_RSA"
    DH_ANON = "DH_anon"
    ECDH_ECDSA = "ECDH_ECDSA"
    ECDH_RSA = "ECDH_RSA"
    ECDHE_ECDSA = "ECDHE_ECDSA"
    ECDHE_RSA = "ECDHE_RSA"
    ECDH_ANON = "ECDH_anon"
    KRB5 = "KRB5"
    PSK = "PSK"
    DHE_PSK = "DHE_PSK"
    RSA_PSK = "RSA_PSK"
    ECDHE_PSK = "ECDHE_PSK"
    SRP_SHA = "SRP_SHA"
    SRP_SHA_RSA = "SRP_SHA_RSA"
    SRP_SHA_DSS = "SRP_SHA_DSS"
    GOST = "GOST"
    TLS13 = "TLS13"  # key exchange negotiated via extensions, not the suite


class KexFamily(enum.Enum):
    """Coarse key-exchange grouping used by Figure 8 of the paper."""

    RSA = "RSA"        # RSA key transport (not forward secret)
    DH = "DH"          # static (finite-field) Diffie-Hellman
    DHE = "DHE"        # ephemeral finite-field Diffie-Hellman
    ECDH = "ECDH"      # static elliptic-curve Diffie-Hellman
    ECDHE = "ECDHE"    # ephemeral elliptic-curve Diffie-Hellman
    ANON = "ANON"      # unauthenticated key exchange
    OTHER = "OTHER"    # PSK, SRP, KRB5, GOST, NULL


_KEX_FAMILY = {
    KeyExchange.NULL: KexFamily.OTHER,
    KeyExchange.RSA: KexFamily.RSA,
    KeyExchange.DH_DSS: KexFamily.DH,
    KeyExchange.DH_RSA: KexFamily.DH,
    KeyExchange.DHE_DSS: KexFamily.DHE,
    KeyExchange.DHE_RSA: KexFamily.DHE,
    KeyExchange.DH_ANON: KexFamily.ANON,
    KeyExchange.ECDH_ECDSA: KexFamily.ECDH,
    KeyExchange.ECDH_RSA: KexFamily.ECDH,
    KeyExchange.ECDHE_ECDSA: KexFamily.ECDHE,
    KeyExchange.ECDHE_RSA: KexFamily.ECDHE,
    KeyExchange.ECDH_ANON: KexFamily.ANON,
    KeyExchange.KRB5: KexFamily.OTHER,
    KeyExchange.PSK: KexFamily.OTHER,
    KeyExchange.DHE_PSK: KexFamily.OTHER,
    KeyExchange.RSA_PSK: KexFamily.OTHER,
    KeyExchange.ECDHE_PSK: KexFamily.OTHER,
    KeyExchange.SRP_SHA: KexFamily.OTHER,
    KeyExchange.SRP_SHA_RSA: KexFamily.OTHER,
    KeyExchange.SRP_SHA_DSS: KexFamily.OTHER,
    KeyExchange.GOST: KexFamily.OTHER,
    KeyExchange.TLS13: KexFamily.ECDHE,  # TLS 1.3 is always (EC)DHE
}


class Authentication(enum.Enum):
    """Server-authentication mechanism."""

    NULL = "NULL"       # anonymous — no certificate
    RSA = "RSA"
    DSS = "DSS"
    ECDSA = "ECDSA"
    KRB5 = "KRB5"
    PSK = "PSK"
    SRP = "SRP"
    GOST = "GOST"
    CERT = "CERT"       # TLS 1.3: certificate, algorithm via extensions


class Encryption(enum.Enum):
    """Bulk-encryption algorithm, with (key_bits, block_bits) metadata.

    ``block_bits`` is 0 for stream ciphers and AEAD-native constructions
    where the 64-bit-birthday concern of Sweet32 does not apply.
    """

    NULL = ("NULL", 0, 0)
    RC4_40 = ("RC4_40", 40, 0)
    RC4_128 = ("RC4_128", 128, 0)
    RC2_CBC_40 = ("RC2_CBC_40", 40, 64)
    DES40 = ("DES40", 40, 64)
    DES = ("DES", 56, 64)
    TRIPLE_DES = ("3DES_EDE", 112, 64)
    IDEA = ("IDEA", 128, 64)
    SEED = ("SEED", 128, 128)
    AES_128 = ("AES_128", 128, 128)
    AES_256 = ("AES_256", 256, 128)
    CAMELLIA_128 = ("CAMELLIA_128", 128, 128)
    CAMELLIA_256 = ("CAMELLIA_256", 256, 128)
    ARIA_128 = ("ARIA_128", 128, 128)
    ARIA_256 = ("ARIA_256", 256, 128)
    CHACHA20 = ("CHACHA20", 256, 0)
    GOST_28147 = ("GOST_28147", 256, 64)

    def __init__(self, label: str, key_bits: int, block_bits: int):
        self.label = label
        self.key_bits = key_bits
        self.block_bits = block_bits


class CipherMode(enum.Enum):
    """Mode of operation of the bulk cipher."""

    NULL = "NULL"          # no encryption at all
    STREAM = "STREAM"      # RC4-style stream cipher
    CBC = "CBC"
    GCM = "GCM"
    CCM = "CCM"
    CCM_8 = "CCM_8"
    POLY1305 = "POLY1305"  # ChaCha20-Poly1305 AEAD
    CNT = "CNT"            # GOST counter mode

    @property
    def is_aead(self) -> bool:
        return self in (CipherMode.GCM, CipherMode.CCM, CipherMode.CCM_8, CipherMode.POLY1305)


class MAC(enum.Enum):
    """Record-protection MAC (or, for AEAD/TLS 1.3 suites, the PRF hash)."""

    NULL = "NULL"
    MD5 = "MD5"
    SHA = "SHA"
    SHA256 = "SHA256"
    SHA384 = "SHA384"
    IMIT = "IMIT"  # GOST 28147-89 IMIT


@dataclass(frozen=True)
class CipherSuite:
    """A single IANA cipher suite with derived classification.

    Instances are immutable and interned in :data:`REGISTRY`; identity
    comparison by ``code`` is safe throughout the library.
    """

    code: int
    name: str
    kex: KeyExchange
    auth: Authentication
    encryption: Encryption
    mode: CipherMode
    mac: MAC
    export: bool = False
    scsv: bool = False
    tls13_only: bool = field(default=False)

    # ---- classification predicates used throughout the analysis ----

    @property
    def kex_family(self) -> KexFamily:
        """Coarse key-exchange grouping (Figure 8)."""
        return _KEX_FAMILY[self.kex]

    @property
    def is_aead(self) -> bool:
        """True for GCM/CCM/ChaCha20-Poly1305 suites (Figures 2-5, 9, 10)."""
        return self.mode.is_aead

    @property
    def is_cbc(self) -> bool:
        return self.mode is CipherMode.CBC

    @property
    def is_rc4(self) -> bool:
        return self.encryption in (Encryption.RC4_40, Encryption.RC4_128)

    @property
    def is_des(self) -> bool:
        """Single DES (including 40-bit export DES), not 3DES."""
        return self.encryption in (Encryption.DES, Encryption.DES40)

    @property
    def is_3des(self) -> bool:
        return self.encryption is Encryption.TRIPLE_DES

    @property
    def is_export(self) -> bool:
        return self.export

    @property
    def is_anonymous(self) -> bool:
        """True if the key exchange is unauthenticated (§6.2)."""
        return self.auth is Authentication.NULL and not self.scsv

    @property
    def is_null_encryption(self) -> bool:
        """True if the suite provides no confidentiality (§6.1)."""
        return self.encryption is Encryption.NULL and not self.scsv

    @property
    def is_null_null(self) -> bool:
        """The TLS_NULL_WITH_NULL_NULL suite: no integrity either (§6.1)."""
        return self.code == 0x0000

    @property
    def forward_secret(self) -> bool:
        """True for ephemeral (EC)DHE key exchange (§6.3.1)."""
        return self.kex_family in (KexFamily.DHE, KexFamily.ECDHE)

    @property
    def uses_small_block(self) -> bool:
        """True for 64-bit-block ciphers vulnerable to Sweet32."""
        return self.encryption.block_bits == 64

    @property
    def aead_algorithm(self) -> str | None:
        """Label used by Figures 9/10, or None for non-AEAD suites."""
        if not self.is_aead:
            return None
        if self.mode is CipherMode.POLY1305:
            return "ChaCha20-Poly1305"
        base = {
            Encryption.AES_128: "AES128",
            Encryption.AES_256: "AES256",
            Encryption.CAMELLIA_128: "CAMELLIA128",
            Encryption.CAMELLIA_256: "CAMELLIA256",
            Encryption.ARIA_128: "ARIA128",
            Encryption.ARIA_256: "ARIA256",
        }.get(self.encryption, self.encryption.label)
        if self.mode is CipherMode.GCM:
            return f"{base}-GCM"
        return f"{base}-CCM"

    @property
    def mode_class(self) -> str:
        """One of ``"AEAD"``, ``"CBC"``, ``"RC4"``, ``"STREAM"``, ``"NULL"``,
        ``"OTHER"`` — the grouping of Figure 2."""
        if self.scsv:
            return "OTHER"
        if self.is_aead:
            return "AEAD"
        if self.is_rc4:
            return "RC4"
        if self.is_cbc:
            return "CBC"
        if self.is_null_encryption:
            return "NULL"
        if self.mode is CipherMode.STREAM:
            return "STREAM"
        return "OTHER"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<CipherSuite {self.code:#06x} {self.name}>"


class UnknownCipherSuite(KeyError):
    """Raised when a code point or name is not in the registry."""


# ---------------------------------------------------------------------------
# IANA name parsing
# ---------------------------------------------------------------------------

_KEX_TOKENS = {
    "NULL": (KeyExchange.NULL, Authentication.NULL),
    "RSA": (KeyExchange.RSA, Authentication.RSA),
    "RSA_FIPS": (KeyExchange.RSA, Authentication.RSA),
    "DH_DSS": (KeyExchange.DH_DSS, Authentication.DSS),
    "DH_RSA": (KeyExchange.DH_RSA, Authentication.RSA),
    "DHE_DSS": (KeyExchange.DHE_DSS, Authentication.DSS),
    "DHE_RSA": (KeyExchange.DHE_RSA, Authentication.RSA),
    "DH_anon": (KeyExchange.DH_ANON, Authentication.NULL),
    "ECDH_ECDSA": (KeyExchange.ECDH_ECDSA, Authentication.ECDSA),
    "ECDH_RSA": (KeyExchange.ECDH_RSA, Authentication.RSA),
    "ECDHE_ECDSA": (KeyExchange.ECDHE_ECDSA, Authentication.ECDSA),
    "ECDHE_RSA": (KeyExchange.ECDHE_RSA, Authentication.RSA),
    "ECDH_anon": (KeyExchange.ECDH_ANON, Authentication.NULL),
    "KRB5": (KeyExchange.KRB5, Authentication.KRB5),
    "PSK": (KeyExchange.PSK, Authentication.PSK),
    "DHE_PSK": (KeyExchange.DHE_PSK, Authentication.PSK),
    "RSA_PSK": (KeyExchange.RSA_PSK, Authentication.PSK),
    "ECDHE_PSK": (KeyExchange.ECDHE_PSK, Authentication.PSK),
    "SRP_SHA": (KeyExchange.SRP_SHA, Authentication.SRP),
    "SRP_SHA_RSA": (KeyExchange.SRP_SHA_RSA, Authentication.RSA),
    "SRP_SHA_DSS": (KeyExchange.SRP_SHA_DSS, Authentication.DSS),
}

_CIPHER_TOKENS = {
    "NULL": (Encryption.NULL, CipherMode.NULL),
    "RC4_40": (Encryption.RC4_40, CipherMode.STREAM),
    "RC4_128": (Encryption.RC4_128, CipherMode.STREAM),
    "RC2_CBC_40": (Encryption.RC2_CBC_40, CipherMode.CBC),
    "DES40_CBC": (Encryption.DES40, CipherMode.CBC),
    "DES_CBC_40": (Encryption.DES40, CipherMode.CBC),
    "DES_CBC": (Encryption.DES, CipherMode.CBC),
    "3DES_EDE_CBC": (Encryption.TRIPLE_DES, CipherMode.CBC),
    "IDEA_CBC": (Encryption.IDEA, CipherMode.CBC),
    "SEED_CBC": (Encryption.SEED, CipherMode.CBC),
    "AES_128_CBC": (Encryption.AES_128, CipherMode.CBC),
    "AES_256_CBC": (Encryption.AES_256, CipherMode.CBC),
    "AES_128_GCM": (Encryption.AES_128, CipherMode.GCM),
    "AES_256_GCM": (Encryption.AES_256, CipherMode.GCM),
    "AES_128_CCM": (Encryption.AES_128, CipherMode.CCM),
    "AES_256_CCM": (Encryption.AES_256, CipherMode.CCM),
    "AES_128_CCM_8": (Encryption.AES_128, CipherMode.CCM_8),
    "AES_256_CCM_8": (Encryption.AES_256, CipherMode.CCM_8),
    "CAMELLIA_128_CBC": (Encryption.CAMELLIA_128, CipherMode.CBC),
    "CAMELLIA_256_CBC": (Encryption.CAMELLIA_256, CipherMode.CBC),
    "CAMELLIA_128_GCM": (Encryption.CAMELLIA_128, CipherMode.GCM),
    "CAMELLIA_256_GCM": (Encryption.CAMELLIA_256, CipherMode.GCM),
    "ARIA_128_CBC": (Encryption.ARIA_128, CipherMode.CBC),
    "ARIA_256_CBC": (Encryption.ARIA_256, CipherMode.CBC),
    "ARIA_128_GCM": (Encryption.ARIA_128, CipherMode.GCM),
    "ARIA_256_GCM": (Encryption.ARIA_256, CipherMode.GCM),
    "CHACHA20_POLY1305": (Encryption.CHACHA20, CipherMode.POLY1305),
    "28147_CNT": (Encryption.GOST_28147, CipherMode.CNT),
}

_MAC_TOKENS = {
    "NULL": MAC.NULL,
    "MD5": MAC.MD5,
    "SHA": MAC.SHA,
    "SHA256": MAC.SHA256,
    "SHA384": MAC.SHA384,
    "IMIT": MAC.IMIT,
}

# TLS 1.3 suite bodies: cipher+hash, no key exchange / auth in the name.
_TLS13_BODIES = {
    "AES_128_GCM_SHA256": (Encryption.AES_128, CipherMode.GCM, MAC.SHA256),
    "AES_256_GCM_SHA384": (Encryption.AES_256, CipherMode.GCM, MAC.SHA384),
    "CHACHA20_POLY1305_SHA256": (Encryption.CHACHA20, CipherMode.POLY1305, MAC.SHA256),
    "AES_128_CCM_SHA256": (Encryption.AES_128, CipherMode.CCM, MAC.SHA256),
    "AES_128_CCM_8_SHA256": (Encryption.AES_128, CipherMode.CCM_8, MAC.SHA256),
}


class SuiteNameError(ValueError):
    """Raised when an IANA suite name cannot be parsed."""


def parse_suite_name(code: int, name: str) -> CipherSuite:
    """Parse an IANA suite name into a :class:`CipherSuite`.

    Handles the classic ``TLS_<KEX>[_EXPORT]_WITH_<CIPHER>_<MAC>`` grammar,
    TLS 1.3 names (no ``_WITH_``), GOST names, and the two SCSV signalling
    values.
    """
    if name in ("TLS_EMPTY_RENEGOTIATION_INFO_SCSV", "TLS_FALLBACK_SCSV"):
        return CipherSuite(
            code, name, KeyExchange.NULL, Authentication.NULL,
            Encryption.NULL, CipherMode.NULL, MAC.NULL, scsv=True,
        )
    if not name.startswith("TLS_"):
        raise SuiteNameError(f"not a TLS suite name: {name!r}")
    body = name[len("TLS_"):]

    if "_WITH_" not in body:
        # TLS 1.3 grammar (allow an _OLD suffix for pre-standard ChaCha names).
        if body in _TLS13_BODIES:
            enc, mode, mac = _TLS13_BODIES[body]
            return CipherSuite(
                code, name, KeyExchange.TLS13, Authentication.CERT,
                enc, mode, mac, tls13_only=True,
            )
        raise SuiteNameError(f"unparseable suite name: {name!r}")

    kex_part, cipher_part = body.split("_WITH_", 1)

    if kex_part.startswith("GOSTR"):
        kex, auth = KeyExchange.GOST, Authentication.GOST
        export = False
    else:
        export = kex_part.endswith("_EXPORT")
        if export:
            kex_part = kex_part[: -len("_EXPORT")]
        try:
            kex, auth = _KEX_TOKENS[kex_part]
        except KeyError:
            raise SuiteNameError(f"unknown key exchange in {name!r}") from None

    # Pre-standard ChaCha20 suites shipped by Chrome ("..._OLD").
    if cipher_part.endswith("_OLD"):
        cipher_part = cipher_part[: -len("_OLD")]

    # CCM suites and the pre-standard ChaCha names carry no MAC token at
    # all (AEAD: the mode authenticates); otherwise the MAC is the final
    # underscore-separated token.
    if cipher_part in _CIPHER_TOKENS:
        cipher_token, mac_token = cipher_part, "NULL"
    else:
        cipher_token, _, mac_token = cipher_part.rpartition("_")
        if mac_token not in _MAC_TOKENS:
            raise SuiteNameError(f"unknown MAC in {name!r}")
        if cipher_token not in _CIPHER_TOKENS:
            raise SuiteNameError(f"unknown cipher in {name!r}")
    enc, mode = _CIPHER_TOKENS[cipher_token]
    mac = _MAC_TOKENS[mac_token]
    return CipherSuite(code, name, kex, auth, enc, mode, mac, export=export)


# ---------------------------------------------------------------------------
# The registry: (code, IANA name) pairs
# ---------------------------------------------------------------------------

_SUITE_NAMES: tuple[tuple[int, str], ...] = (
    (0x0000, "TLS_NULL_WITH_NULL_NULL"),
    (0x0001, "TLS_RSA_WITH_NULL_MD5"),
    (0x0002, "TLS_RSA_WITH_NULL_SHA"),
    (0x0003, "TLS_RSA_EXPORT_WITH_RC4_40_MD5"),
    (0x0004, "TLS_RSA_WITH_RC4_128_MD5"),
    (0x0005, "TLS_RSA_WITH_RC4_128_SHA"),
    (0x0006, "TLS_RSA_EXPORT_WITH_RC2_CBC_40_MD5"),
    (0x0007, "TLS_RSA_WITH_IDEA_CBC_SHA"),
    (0x0008, "TLS_RSA_EXPORT_WITH_DES40_CBC_SHA"),
    (0x0009, "TLS_RSA_WITH_DES_CBC_SHA"),
    (0x000A, "TLS_RSA_WITH_3DES_EDE_CBC_SHA"),
    (0x000B, "TLS_DH_DSS_EXPORT_WITH_DES40_CBC_SHA"),
    (0x000C, "TLS_DH_DSS_WITH_DES_CBC_SHA"),
    (0x000D, "TLS_DH_DSS_WITH_3DES_EDE_CBC_SHA"),
    (0x000E, "TLS_DH_RSA_EXPORT_WITH_DES40_CBC_SHA"),
    (0x000F, "TLS_DH_RSA_WITH_DES_CBC_SHA"),
    (0x0010, "TLS_DH_RSA_WITH_3DES_EDE_CBC_SHA"),
    (0x0011, "TLS_DHE_DSS_EXPORT_WITH_DES40_CBC_SHA"),
    (0x0012, "TLS_DHE_DSS_WITH_DES_CBC_SHA"),
    (0x0013, "TLS_DHE_DSS_WITH_3DES_EDE_CBC_SHA"),
    (0x0014, "TLS_DHE_RSA_EXPORT_WITH_DES40_CBC_SHA"),
    (0x0015, "TLS_DHE_RSA_WITH_DES_CBC_SHA"),
    (0x0016, "TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA"),
    (0x0017, "TLS_DH_anon_EXPORT_WITH_RC4_40_MD5"),
    (0x0018, "TLS_DH_anon_WITH_RC4_128_MD5"),
    (0x0019, "TLS_DH_anon_EXPORT_WITH_DES40_CBC_SHA"),
    (0x001A, "TLS_DH_anon_WITH_DES_CBC_SHA"),
    (0x001B, "TLS_DH_anon_WITH_3DES_EDE_CBC_SHA"),
    (0x001E, "TLS_KRB5_WITH_DES_CBC_SHA"),
    (0x001F, "TLS_KRB5_WITH_3DES_EDE_CBC_SHA"),
    (0x0020, "TLS_KRB5_WITH_RC4_128_SHA"),
    (0x0021, "TLS_KRB5_WITH_IDEA_CBC_SHA"),
    (0x0022, "TLS_KRB5_WITH_DES_CBC_MD5"),
    (0x0023, "TLS_KRB5_WITH_3DES_EDE_CBC_MD5"),
    (0x0024, "TLS_KRB5_WITH_RC4_128_MD5"),
    (0x0025, "TLS_KRB5_WITH_IDEA_CBC_MD5"),
    (0x0026, "TLS_KRB5_EXPORT_WITH_DES_CBC_40_SHA"),
    (0x0027, "TLS_KRB5_EXPORT_WITH_RC2_CBC_40_SHA"),
    (0x0028, "TLS_KRB5_EXPORT_WITH_RC4_40_SHA"),
    (0x0029, "TLS_KRB5_EXPORT_WITH_DES_CBC_40_MD5"),
    (0x002A, "TLS_KRB5_EXPORT_WITH_RC2_CBC_40_MD5"),
    (0x002B, "TLS_KRB5_EXPORT_WITH_RC4_40_MD5"),
    (0x002C, "TLS_PSK_WITH_NULL_SHA"),
    (0x002D, "TLS_DHE_PSK_WITH_NULL_SHA"),
    (0x002E, "TLS_RSA_PSK_WITH_NULL_SHA"),
    (0x002F, "TLS_RSA_WITH_AES_128_CBC_SHA"),
    (0x0030, "TLS_DH_DSS_WITH_AES_128_CBC_SHA"),
    (0x0031, "TLS_DH_RSA_WITH_AES_128_CBC_SHA"),
    (0x0032, "TLS_DHE_DSS_WITH_AES_128_CBC_SHA"),
    (0x0033, "TLS_DHE_RSA_WITH_AES_128_CBC_SHA"),
    (0x0034, "TLS_DH_anon_WITH_AES_128_CBC_SHA"),
    (0x0035, "TLS_RSA_WITH_AES_256_CBC_SHA"),
    (0x0036, "TLS_DH_DSS_WITH_AES_256_CBC_SHA"),
    (0x0037, "TLS_DH_RSA_WITH_AES_256_CBC_SHA"),
    (0x0038, "TLS_DHE_DSS_WITH_AES_256_CBC_SHA"),
    (0x0039, "TLS_DHE_RSA_WITH_AES_256_CBC_SHA"),
    (0x003A, "TLS_DH_anon_WITH_AES_256_CBC_SHA"),
    (0x003B, "TLS_RSA_WITH_NULL_SHA256"),
    (0x003C, "TLS_RSA_WITH_AES_128_CBC_SHA256"),
    (0x003D, "TLS_RSA_WITH_AES_256_CBC_SHA256"),
    (0x003E, "TLS_DH_DSS_WITH_AES_128_CBC_SHA256"),
    (0x003F, "TLS_DH_RSA_WITH_AES_128_CBC_SHA256"),
    (0x0040, "TLS_DHE_DSS_WITH_AES_128_CBC_SHA256"),
    (0x0041, "TLS_RSA_WITH_CAMELLIA_128_CBC_SHA"),
    (0x0042, "TLS_DH_DSS_WITH_CAMELLIA_128_CBC_SHA"),
    (0x0043, "TLS_DH_RSA_WITH_CAMELLIA_128_CBC_SHA"),
    (0x0044, "TLS_DHE_DSS_WITH_CAMELLIA_128_CBC_SHA"),
    (0x0045, "TLS_DHE_RSA_WITH_CAMELLIA_128_CBC_SHA"),
    (0x0046, "TLS_DH_anon_WITH_CAMELLIA_128_CBC_SHA"),
    (0x0066, "TLS_DHE_DSS_WITH_RC4_128_SHA"),
    (0x0067, "TLS_DHE_RSA_WITH_AES_128_CBC_SHA256"),
    (0x0068, "TLS_DH_DSS_WITH_AES_256_CBC_SHA256"),
    (0x0069, "TLS_DH_RSA_WITH_AES_256_CBC_SHA256"),
    (0x006A, "TLS_DHE_DSS_WITH_AES_256_CBC_SHA256"),
    (0x006B, "TLS_DHE_RSA_WITH_AES_256_CBC_SHA256"),
    (0x006C, "TLS_DH_anon_WITH_AES_128_CBC_SHA256"),
    (0x006D, "TLS_DH_anon_WITH_AES_256_CBC_SHA256"),
    (0x0080, "TLS_GOSTR341094_WITH_28147_CNT_IMIT"),
    (0x0081, "TLS_GOSTR341001_WITH_28147_CNT_IMIT"),
    (0x0084, "TLS_RSA_WITH_CAMELLIA_256_CBC_SHA"),
    (0x0085, "TLS_DH_DSS_WITH_CAMELLIA_256_CBC_SHA"),
    (0x0086, "TLS_DH_RSA_WITH_CAMELLIA_256_CBC_SHA"),
    (0x0087, "TLS_DHE_DSS_WITH_CAMELLIA_256_CBC_SHA"),
    (0x0088, "TLS_DHE_RSA_WITH_CAMELLIA_256_CBC_SHA"),
    (0x0089, "TLS_DH_anon_WITH_CAMELLIA_256_CBC_SHA"),
    (0x008A, "TLS_PSK_WITH_RC4_128_SHA"),
    (0x008B, "TLS_PSK_WITH_3DES_EDE_CBC_SHA"),
    (0x008C, "TLS_PSK_WITH_AES_128_CBC_SHA"),
    (0x008D, "TLS_PSK_WITH_AES_256_CBC_SHA"),
    (0x008E, "TLS_DHE_PSK_WITH_RC4_128_SHA"),
    (0x008F, "TLS_DHE_PSK_WITH_3DES_EDE_CBC_SHA"),
    (0x0090, "TLS_DHE_PSK_WITH_AES_128_CBC_SHA"),
    (0x0091, "TLS_DHE_PSK_WITH_AES_256_CBC_SHA"),
    (0x0092, "TLS_RSA_PSK_WITH_RC4_128_SHA"),
    (0x0093, "TLS_RSA_PSK_WITH_3DES_EDE_CBC_SHA"),
    (0x0094, "TLS_RSA_PSK_WITH_AES_128_CBC_SHA"),
    (0x0095, "TLS_RSA_PSK_WITH_AES_256_CBC_SHA"),
    (0x0096, "TLS_RSA_WITH_SEED_CBC_SHA"),
    (0x0097, "TLS_DH_DSS_WITH_SEED_CBC_SHA"),
    (0x0098, "TLS_DH_RSA_WITH_SEED_CBC_SHA"),
    (0x0099, "TLS_DHE_DSS_WITH_SEED_CBC_SHA"),
    (0x009A, "TLS_DHE_RSA_WITH_SEED_CBC_SHA"),
    (0x009B, "TLS_DH_anon_WITH_SEED_CBC_SHA"),
    (0x009C, "TLS_RSA_WITH_AES_128_GCM_SHA256"),
    (0x009D, "TLS_RSA_WITH_AES_256_GCM_SHA384"),
    (0x009E, "TLS_DHE_RSA_WITH_AES_128_GCM_SHA256"),
    (0x009F, "TLS_DHE_RSA_WITH_AES_256_GCM_SHA384"),
    (0x00A0, "TLS_DH_RSA_WITH_AES_128_GCM_SHA256"),
    (0x00A1, "TLS_DH_RSA_WITH_AES_256_GCM_SHA384"),
    (0x00A2, "TLS_DHE_DSS_WITH_AES_128_GCM_SHA256"),
    (0x00A3, "TLS_DHE_DSS_WITH_AES_256_GCM_SHA384"),
    (0x00A4, "TLS_DH_DSS_WITH_AES_128_GCM_SHA256"),
    (0x00A5, "TLS_DH_DSS_WITH_AES_256_GCM_SHA384"),
    (0x00A6, "TLS_DH_anon_WITH_AES_128_GCM_SHA256"),
    (0x00A7, "TLS_DH_anon_WITH_AES_256_GCM_SHA384"),
    (0x00BA, "TLS_RSA_WITH_CAMELLIA_128_CBC_SHA256"),
    (0x00BE, "TLS_DHE_RSA_WITH_CAMELLIA_128_CBC_SHA256"),
    (0x00C0, "TLS_RSA_WITH_CAMELLIA_256_CBC_SHA256"),
    (0x00C4, "TLS_DHE_RSA_WITH_CAMELLIA_256_CBC_SHA256"),
    (0x00FF, "TLS_EMPTY_RENEGOTIATION_INFO_SCSV"),
    (0x1301, "TLS_AES_128_GCM_SHA256"),
    (0x1302, "TLS_AES_256_GCM_SHA384"),
    (0x1303, "TLS_CHACHA20_POLY1305_SHA256"),
    (0x1304, "TLS_AES_128_CCM_SHA256"),
    (0x1305, "TLS_AES_128_CCM_8_SHA256"),
    (0x5600, "TLS_FALLBACK_SCSV"),
    (0xC001, "TLS_ECDH_ECDSA_WITH_NULL_SHA"),
    (0xC002, "TLS_ECDH_ECDSA_WITH_RC4_128_SHA"),
    (0xC003, "TLS_ECDH_ECDSA_WITH_3DES_EDE_CBC_SHA"),
    (0xC004, "TLS_ECDH_ECDSA_WITH_AES_128_CBC_SHA"),
    (0xC005, "TLS_ECDH_ECDSA_WITH_AES_256_CBC_SHA"),
    (0xC006, "TLS_ECDHE_ECDSA_WITH_NULL_SHA"),
    (0xC007, "TLS_ECDHE_ECDSA_WITH_RC4_128_SHA"),
    (0xC008, "TLS_ECDHE_ECDSA_WITH_3DES_EDE_CBC_SHA"),
    (0xC009, "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA"),
    (0xC00A, "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA"),
    (0xC00B, "TLS_ECDH_RSA_WITH_NULL_SHA"),
    (0xC00C, "TLS_ECDH_RSA_WITH_RC4_128_SHA"),
    (0xC00D, "TLS_ECDH_RSA_WITH_3DES_EDE_CBC_SHA"),
    (0xC00E, "TLS_ECDH_RSA_WITH_AES_128_CBC_SHA"),
    (0xC00F, "TLS_ECDH_RSA_WITH_AES_256_CBC_SHA"),
    (0xC010, "TLS_ECDHE_RSA_WITH_NULL_SHA"),
    (0xC011, "TLS_ECDHE_RSA_WITH_RC4_128_SHA"),
    (0xC012, "TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA"),
    (0xC013, "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA"),
    (0xC014, "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA"),
    (0xC015, "TLS_ECDH_anon_WITH_NULL_SHA"),
    (0xC016, "TLS_ECDH_anon_WITH_RC4_128_SHA"),
    (0xC017, "TLS_ECDH_anon_WITH_3DES_EDE_CBC_SHA"),
    (0xC018, "TLS_ECDH_anon_WITH_AES_128_CBC_SHA"),
    (0xC019, "TLS_ECDH_anon_WITH_AES_256_CBC_SHA"),
    (0xC01A, "TLS_SRP_SHA_WITH_3DES_EDE_CBC_SHA"),
    (0xC01B, "TLS_SRP_SHA_RSA_WITH_3DES_EDE_CBC_SHA"),
    (0xC01C, "TLS_SRP_SHA_DSS_WITH_3DES_EDE_CBC_SHA"),
    (0xC01D, "TLS_SRP_SHA_WITH_AES_128_CBC_SHA"),
    (0xC01E, "TLS_SRP_SHA_RSA_WITH_AES_128_CBC_SHA"),
    (0xC01F, "TLS_SRP_SHA_DSS_WITH_AES_128_CBC_SHA"),
    (0xC020, "TLS_SRP_SHA_WITH_AES_256_CBC_SHA"),
    (0xC021, "TLS_SRP_SHA_RSA_WITH_AES_256_CBC_SHA"),
    (0xC022, "TLS_SRP_SHA_DSS_WITH_AES_256_CBC_SHA"),
    (0xC023, "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256"),
    (0xC024, "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384"),
    (0xC025, "TLS_ECDH_ECDSA_WITH_AES_128_CBC_SHA256"),
    (0xC026, "TLS_ECDH_ECDSA_WITH_AES_256_CBC_SHA384"),
    (0xC027, "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256"),
    (0xC028, "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384"),
    (0xC029, "TLS_ECDH_RSA_WITH_AES_128_CBC_SHA256"),
    (0xC02A, "TLS_ECDH_RSA_WITH_AES_256_CBC_SHA384"),
    (0xC02B, "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256"),
    (0xC02C, "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384"),
    (0xC02D, "TLS_ECDH_ECDSA_WITH_AES_128_GCM_SHA256"),
    (0xC02E, "TLS_ECDH_ECDSA_WITH_AES_256_GCM_SHA384"),
    (0xC02F, "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"),
    (0xC030, "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384"),
    (0xC031, "TLS_ECDH_RSA_WITH_AES_128_GCM_SHA256"),
    (0xC032, "TLS_ECDH_RSA_WITH_AES_256_GCM_SHA384"),
    (0xC033, "TLS_ECDHE_PSK_WITH_RC4_128_SHA"),
    (0xC034, "TLS_ECDHE_PSK_WITH_3DES_EDE_CBC_SHA"),
    (0xC035, "TLS_ECDHE_PSK_WITH_AES_128_CBC_SHA"),
    (0xC036, "TLS_ECDHE_PSK_WITH_AES_256_CBC_SHA"),
    (0xC072, "TLS_ECDHE_ECDSA_WITH_CAMELLIA_128_CBC_SHA256"),
    (0xC073, "TLS_ECDHE_ECDSA_WITH_CAMELLIA_256_CBC_SHA384"),
    (0xC076, "TLS_ECDHE_RSA_WITH_CAMELLIA_128_CBC_SHA256"),
    (0xC077, "TLS_ECDHE_RSA_WITH_CAMELLIA_256_CBC_SHA384"),
    (0xC07A, "TLS_RSA_WITH_CAMELLIA_128_GCM_SHA256"),
    (0xC07B, "TLS_RSA_WITH_CAMELLIA_256_GCM_SHA384"),
    (0xC07C, "TLS_DHE_RSA_WITH_CAMELLIA_128_GCM_SHA256"),
    (0xC07D, "TLS_DHE_RSA_WITH_CAMELLIA_256_GCM_SHA384"),
    (0xC09C, "TLS_RSA_WITH_AES_128_CCM"),
    (0xC09D, "TLS_RSA_WITH_AES_256_CCM"),
    (0xC09E, "TLS_DHE_RSA_WITH_AES_128_CCM"),
    (0xC09F, "TLS_DHE_RSA_WITH_AES_256_CCM"),
    (0xC0A0, "TLS_RSA_WITH_AES_128_CCM_8"),
    (0xC0A1, "TLS_RSA_WITH_AES_256_CCM_8"),
    (0xC0A2, "TLS_DHE_RSA_WITH_AES_128_CCM_8"),
    (0xC0A3, "TLS_DHE_RSA_WITH_AES_256_CCM_8"),
    (0xC0AC, "TLS_ECDHE_ECDSA_WITH_AES_128_CCM"),
    (0xC0AD, "TLS_ECDHE_ECDSA_WITH_AES_256_CCM"),
    (0xC0AE, "TLS_ECDHE_ECDSA_WITH_AES_128_CCM_8"),
    (0xC0AF, "TLS_ECDHE_ECDSA_WITH_AES_256_CCM_8"),
    (0xCC13, "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_OLD"),
    (0xCC14, "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_OLD"),
    (0xCCA8, "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256"),
    (0xCCA9, "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256"),
    (0xCCAA, "TLS_DHE_RSA_WITH_CHACHA20_POLY1305_SHA256"),
    (0xCCAB, "TLS_PSK_WITH_CHACHA20_POLY1305_SHA256"),
    (0xCCAC, "TLS_ECDHE_PSK_WITH_CHACHA20_POLY1305_SHA256"),
    (0xCCAD, "TLS_DHE_PSK_WITH_CHACHA20_POLY1305_SHA256"),
    (0xCCAE, "TLS_RSA_PSK_WITH_CHACHA20_POLY1305_SHA256"),
    # Non-IANA legacy code point: the NSS "FIPS" 3DES suite that 2012-era
    # NSS clients (Firefox, Thunderbird) still offered on the wire.
    (0xFEFF, "TLS_RSA_FIPS_WITH_3DES_EDE_CBC_SHA"),
)


def _build_registry() -> dict[int, CipherSuite]:
    registry: dict[int, CipherSuite] = {}
    for code, name in _SUITE_NAMES:
        if code in registry:
            raise ValueError(f"duplicate cipher suite code {code:#06x}")
        registry[code] = parse_suite_name(code, name)
    return registry


REGISTRY: dict[int, CipherSuite] = _build_registry()
_BY_NAME: dict[str, CipherSuite] = {s.name: s for s in REGISTRY.values()}


def suite_by_code(code: int) -> CipherSuite:
    """Look up a suite by IANA code point; raises :class:`UnknownCipherSuite`."""
    try:
        return REGISTRY[code]
    except KeyError:
        raise UnknownCipherSuite(f"unknown cipher suite code {code:#06x}") from None


def suite_by_name(name: str) -> CipherSuite:
    """Look up a suite by exact IANA name; raises :class:`UnknownCipherSuite`."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise UnknownCipherSuite(f"unknown cipher suite name {name!r}") from None


def suites_by_predicate(predicate) -> list[CipherSuite]:
    """All registered suites satisfying ``predicate``, sorted by code point."""
    return sorted(
        (s for s in REGISTRY.values() if predicate(s)),
        key=lambda s: s.code,
    )


def classify_codes(codes) -> dict[str, int]:
    """Count the mode classes present in an iterable of code points.

    Unknown code points are counted under ``"UNKNOWN"`` rather than raising:
    passive monitors must tolerate unassigned values (GREASE aside, the wild
    contains private code points).
    """
    counts: dict[str, int] = {}
    for code in codes:
        suite = REGISTRY.get(code)
        key = suite.mode_class if suite is not None else "UNKNOWN"
        counts[key] = counts.get(key, 0) + 1
    return counts
