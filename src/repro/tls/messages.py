"""Client Hello / Server Hello message models.

These are the two messages the paper's datasets observe (§2.1: "These two
messages are not encrypted, allowing passive observation").  The models
are plain frozen dataclasses; the binary codec lives in
:mod:`repro.tls.wire`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.tls.ciphers import REGISTRY, CipherSuite
from repro.tls.curves import CURVE_REGISTRY, NamedCurve
from repro.tls.extensions import (
    Extension,
    ExtensionType,
    decode_supported_versions,
    encode_supported_versions,
)
from repro.tls.grease import strip_grease
from repro.tls.versions import ProtocolVersion, TLS12, version_by_wire


def encode_u16_list(values) -> bytes:
    """Encode a list of 16-bit values as a big-endian byte string."""
    return b"".join(int(v).to_bytes(2, "big") for v in values)


def decode_u16_list(data: bytes) -> tuple[int, ...]:
    """Decode a big-endian byte string into 16-bit values."""
    if len(data) % 2 != 0:
        raise ValueError("odd-length u16 list")
    return tuple(int.from_bytes(data[i : i + 2], "big") for i in range(0, len(data), 2))


@dataclass(frozen=True)
class ClientHello:
    """A TLS Client Hello.

    ``cipher_suites``, ``extensions``, ``supported_groups`` and
    ``ec_point_formats`` are stored in the order they appear on the wire,
    which is the order the fingerprint preserves (§4).

    ``supported_groups`` / ``ec_point_formats`` are modeled as first-class
    fields and rendered into extension bodies by the wire codec: every
    realistic client that sends them sends them as extensions anyway, and
    keeping them structured makes fingerprinting and negotiation direct.
    """

    legacy_version: int = TLS12.wire
    random: bytes = b"\x00" * 32
    session_id: bytes = b""
    cipher_suites: tuple[int, ...] = ()
    compression_methods: tuple[int, ...] = (0,)
    extensions: tuple[Extension, ...] = ()
    supported_groups: tuple[int, ...] = ()
    ec_point_formats: tuple[int, ...] = ()
    supported_versions: tuple[int, ...] = ()

    # ---- structured accessors -------------------------------------------

    def extension_types(self) -> tuple[int, ...]:
        """Extension type code points in wire order."""
        return tuple(ext.ext_type for ext in self.extensions)

    def has_extension(self, ext_type: int) -> bool:
        return any(ext.ext_type == ext_type for ext in self.extensions)

    def extension(self, ext_type: int) -> Extension | None:
        """The first extension of the given type, or None."""
        for ext in self.extensions:
            if ext.ext_type == ext_type:
                return ext
        return None

    def known_suites(self) -> tuple[CipherSuite, ...]:
        """Offered suites resolvable in the registry, GREASE stripped."""
        return tuple(
            REGISTRY[code]
            for code in strip_grease(self.cipher_suites)
            if code in REGISTRY
        )

    def known_curves(self) -> tuple[NamedCurve, ...]:
        """Offered named groups resolvable in the registry, GREASE stripped."""
        return tuple(
            CURVE_REGISTRY[code]
            for code in strip_grease(self.supported_groups)
            if code in CURVE_REGISTRY
        )

    def offered_versions(self) -> tuple[int, ...]:
        """Every protocol version the client actually offers.

        TLS 1.3 clients keep ``legacy_version`` at 1.2 and list real
        support in the ``supported_versions`` extension (§6.4); for older
        clients the offer is every version up to ``legacy_version``.
        """
        if self.supported_versions:
            return strip_grease(self.supported_versions)
        return (self.legacy_version,)

    def max_offered_version(self) -> int:
        versions = self.offered_versions()
        return max(versions) if versions else self.legacy_version

    # ---- advertisement predicates (Figures 3, 6, 7, 10) -----------------

    def advertises(self, predicate) -> bool:
        """True if any offered (known, non-GREASE) suite satisfies ``predicate``."""
        return any(predicate(s) for s in self.known_suites())

    def first_index(self, predicate) -> int | None:
        """Index (GREASE-stripped) of the first suite matching ``predicate``.

        Used for Figure 5, the average relative position of the first
        AEAD/CBC/RC4/DES/3DES suite in the advertised list.
        """
        for i, suite in enumerate(self.known_suites()):
            if predicate(suite):
                return i
        return None

    def relative_position(self, predicate) -> float | None:
        """Relative position (0.0 = head, 1.0 = tail) of the first match."""
        suites = self.known_suites()
        if len(suites) <= 1:
            index = self.first_index(predicate)
            return 0.0 if index is not None else None
        index = self.first_index(predicate)
        if index is None:
            return None
        return index / (len(suites) - 1)

    def with_extensions(self, extensions: tuple[Extension, ...]) -> "ClientHello":
        return replace(self, extensions=extensions)


class AlertDescription(enum.IntEnum):
    """TLS alert descriptions used by the negotiation model."""

    CLOSE_NOTIFY = 0
    UNEXPECTED_MESSAGE = 10
    HANDSHAKE_FAILURE = 40
    ILLEGAL_PARAMETER = 47
    PROTOCOL_VERSION = 70
    INSUFFICIENT_SECURITY = 71
    INAPPROPRIATE_FALLBACK = 86


@dataclass(frozen=True)
class Alert:
    """A TLS alert record (always fatal in this model)."""

    description: AlertDescription
    level: int = 2  # fatal

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Alert({self.description.name.lower()})"


@dataclass(frozen=True)
class ServerHello:
    """A TLS Server Hello: the server's committed choices (§2.1)."""

    version: int
    random: bytes = b"\x00" * 32
    session_id: bytes = b""
    cipher_suite: int = 0
    compression_method: int = 0
    extensions: tuple[Extension, ...] = ()
    selected_version: int | None = None  # TLS 1.3 supported_versions echo
    selected_group: int | None = None

    def extension_types(self) -> tuple[int, ...]:
        return tuple(ext.ext_type for ext in self.extensions)

    def has_extension(self, ext_type: int) -> bool:
        return any(ext.ext_type == ext_type for ext in self.extensions)

    @property
    def suite(self) -> CipherSuite | None:
        """The chosen suite if it is a registered code point."""
        return REGISTRY.get(self.cipher_suite)

    @property
    def negotiated_version(self) -> int:
        """The version actually in force (supported_versions overrides)."""
        return self.selected_version if self.selected_version is not None else self.version

    def negotiated_protocol(self) -> ProtocolVersion | None:
        """The negotiated :class:`ProtocolVersion`, or None for drafts."""
        try:
            return version_by_wire(self.negotiated_version)
        except KeyError:
            return None


def build_supported_versions_extension(wire_versions) -> Extension:
    """Build a ``supported_versions`` extension from wire version ints."""
    return Extension(
        ExtensionType.SUPPORTED_VERSIONS,
        encode_supported_versions(list(wire_versions)),
    )


def parse_supported_versions_extension(ext: Extension) -> tuple[int, ...]:
    """Parse a ``supported_versions`` extension body into wire ints."""
    if ext.ext_type != ExtensionType.SUPPORTED_VERSIONS:
        raise ValueError("not a supported_versions extension")
    return tuple(decode_supported_versions(ext.data))
