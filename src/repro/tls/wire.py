"""Binary TLS wire codec for hello messages.

Implements the RFC 5246 encodings of Client Hello and Server Hello,
including record-layer and handshake framing, at the fidelity a banner
grabber (zgrab) or passive monitor (Zeek) needs.  The codec is strict on
decode — truncated or inconsistent length fields raise
:class:`DecodeError` — and deterministic on encode.

The three Client Hello fields that the model keeps structured
(``supported_groups``, ``ec_point_formats``, ``supported_versions``) are
materialized into extension bodies on encode and parsed back out on
decode; :func:`materialize` exposes that normalization directly so
round-trip properties can be stated exactly:
``decode(encode(h)) == materialize(h)`` and encode∘decode is the
identity on byte strings produced by this codec.
"""

from __future__ import annotations

from dataclasses import replace

from repro.tls.extensions import Extension, ExtensionType
from repro.tls.messages import ClientHello, ServerHello, decode_u16_list, encode_u16_list

RECORD_TYPE_HANDSHAKE = 22
RECORD_TYPE_ALERT = 21
HANDSHAKE_TYPE_CLIENT_HELLO = 1
HANDSHAKE_TYPE_SERVER_HELLO = 2

_STRUCTURED_TYPES = (
    ExtensionType.SUPPORTED_GROUPS,
    ExtensionType.EC_POINT_FORMATS,
    ExtensionType.SUPPORTED_VERSIONS,
)


class DecodeError(ValueError):
    """Raised on malformed or truncated wire data."""


class _Reader:
    """Bounds-checked big-endian byte reader."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def take(self, n: int) -> bytes:
        if n < 0 or self.remaining < n:
            raise DecodeError(
                f"truncated data: wanted {n} bytes, have {self.remaining}"
            )
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self.take(2), "big")

    def u24(self) -> int:
        return int.from_bytes(self.take(3), "big")

    def vector(self, length_bytes: int) -> bytes:
        length = int.from_bytes(self.take(length_bytes), "big")
        return self.take(length)

    def expect_end(self) -> None:
        if self.remaining:
            raise DecodeError(f"{self.remaining} trailing bytes")


# ---------------------------------------------------------------------------
# Extension-body codecs for the structured Client Hello fields
# ---------------------------------------------------------------------------

def encode_supported_groups_body(groups) -> bytes:
    body = encode_u16_list(groups)
    return len(body).to_bytes(2, "big") + body


def decode_supported_groups_body(data: bytes) -> tuple[int, ...]:
    reader = _Reader(data)
    body = reader.vector(2)
    reader.expect_end()
    return decode_u16_list(body)


def encode_ec_point_formats_body(formats) -> bytes:
    body = bytes(formats)
    return bytes([len(body)]) + body


def decode_ec_point_formats_body(data: bytes) -> tuple[int, ...]:
    reader = _Reader(data)
    body = reader.vector(1)
    reader.expect_end()
    return tuple(body)


def encode_sni_body(hostname: str) -> bytes:
    name = hostname.encode("ascii")
    entry = b"\x00" + len(name).to_bytes(2, "big") + name
    return len(entry).to_bytes(2, "big") + entry


def decode_sni_body(data: bytes) -> str:
    reader = _Reader(data)
    entries = _Reader(reader.vector(2))
    reader.expect_end()
    name_type = entries.u8()
    if name_type != 0:
        raise DecodeError(f"unsupported SNI name type {name_type}")
    return entries.vector(2).decode("ascii")


def _encode_extensions(extensions: tuple[Extension, ...]) -> bytes:
    parts = []
    for ext in extensions:
        parts.append(ext.ext_type.to_bytes(2, "big"))
        parts.append(len(ext.data).to_bytes(2, "big"))
        parts.append(ext.data)
    body = b"".join(parts)
    return len(body).to_bytes(2, "big") + body


def _decode_extensions(reader: _Reader) -> tuple[Extension, ...]:
    if reader.remaining == 0:
        return ()
    block = _Reader(reader.vector(2))
    extensions = []
    while block.remaining:
        ext_type = block.u16()
        data = block.vector(2)
        extensions.append(Extension(ext_type, data))
    return tuple(extensions)


# ---------------------------------------------------------------------------
# Client Hello
# ---------------------------------------------------------------------------

def materialize(hello: ClientHello) -> ClientHello:
    """Fill the wire bodies of the structured extensions.

    For each structured field that is non-empty: if a marker extension of
    the matching type exists, its body is replaced in place (preserving
    wire order, which fingerprinting depends on); otherwise the extension
    is appended.  Structured fields that are empty leave the extension
    list untouched.
    """
    bodies = {}
    if hello.supported_groups:
        bodies[int(ExtensionType.SUPPORTED_GROUPS)] = encode_supported_groups_body(
            hello.supported_groups
        )
    if hello.ec_point_formats:
        bodies[int(ExtensionType.EC_POINT_FORMATS)] = encode_ec_point_formats_body(
            hello.ec_point_formats
        )
    if hello.supported_versions:
        from repro.tls.extensions import encode_supported_versions

        bodies[int(ExtensionType.SUPPORTED_VERSIONS)] = encode_supported_versions(
            list(hello.supported_versions)
        )

    extensions = []
    seen = set()
    for ext in hello.extensions:
        if ext.ext_type in bodies:
            extensions.append(Extension(ext.ext_type, bodies[ext.ext_type]))
            seen.add(ext.ext_type)
        else:
            extensions.append(ext)
    for ext_type, body in bodies.items():
        if ext_type not in seen:
            extensions.append(Extension(ext_type, body))
    return replace(hello, extensions=tuple(extensions))


def encode_client_hello(hello: ClientHello) -> bytes:
    """Encode the Client Hello handshake body (no framing)."""
    hello = materialize(hello)
    if len(hello.random) != 32:
        raise ValueError("client random must be 32 bytes")
    if len(hello.session_id) > 32:
        raise ValueError("session id longer than 32 bytes")
    suites = encode_u16_list(hello.cipher_suites)
    parts = [
        hello.legacy_version.to_bytes(2, "big"),
        hello.random,
        bytes([len(hello.session_id)]),
        hello.session_id,
        len(suites).to_bytes(2, "big"),
        suites,
        bytes([len(hello.compression_methods)]),
        bytes(hello.compression_methods),
    ]
    if hello.extensions:
        parts.append(_encode_extensions(hello.extensions))
    return b"".join(parts)


def decode_client_hello(data: bytes) -> ClientHello:
    """Decode a Client Hello handshake body (no framing)."""
    reader = _Reader(data)
    legacy_version = reader.u16()
    random = reader.take(32)
    session_id = reader.vector(1)
    suites = decode_u16_list(reader.vector(2))
    compression = tuple(reader.vector(1))
    if not compression:
        raise DecodeError("empty compression methods")
    extensions = _decode_extensions(reader)
    reader.expect_end()

    supported_groups: tuple[int, ...] = ()
    ec_point_formats: tuple[int, ...] = ()
    supported_versions: tuple[int, ...] = ()
    for ext in extensions:
        if ext.ext_type == ExtensionType.SUPPORTED_GROUPS:
            supported_groups = decode_supported_groups_body(ext.data)
        elif ext.ext_type == ExtensionType.EC_POINT_FORMATS:
            ec_point_formats = decode_ec_point_formats_body(ext.data)
        elif ext.ext_type == ExtensionType.SUPPORTED_VERSIONS:
            from repro.tls.extensions import decode_supported_versions

            supported_versions = tuple(decode_supported_versions(ext.data))
    return ClientHello(
        legacy_version=legacy_version,
        random=random,
        session_id=session_id,
        cipher_suites=suites,
        compression_methods=compression,
        extensions=extensions,
        supported_groups=supported_groups,
        ec_point_formats=ec_point_formats,
        supported_versions=supported_versions,
    )


# ---------------------------------------------------------------------------
# Server Hello
# ---------------------------------------------------------------------------

def encode_server_hello(hello: ServerHello) -> bytes:
    """Encode the Server Hello handshake body (no framing)."""
    if len(hello.random) != 32:
        raise ValueError("server random must be 32 bytes")
    extensions = list(hello.extensions)
    if hello.selected_version is not None and not any(
        e.ext_type == ExtensionType.SUPPORTED_VERSIONS for e in extensions
    ):
        extensions.append(
            Extension(
                ExtensionType.SUPPORTED_VERSIONS,
                hello.selected_version.to_bytes(2, "big"),
            )
        )
    if hello.selected_group is not None and not any(
        e.ext_type == ExtensionType.KEY_SHARE for e in extensions
    ):
        extensions.append(
            Extension(ExtensionType.KEY_SHARE, hello.selected_group.to_bytes(2, "big"))
        )
    parts = [
        hello.version.to_bytes(2, "big"),
        hello.random,
        bytes([len(hello.session_id)]),
        hello.session_id,
        hello.cipher_suite.to_bytes(2, "big"),
        bytes([hello.compression_method]),
    ]
    if extensions:
        parts.append(_encode_extensions(tuple(extensions)))
    return b"".join(parts)


def decode_server_hello(data: bytes) -> ServerHello:
    """Decode a Server Hello handshake body (no framing)."""
    reader = _Reader(data)
    version = reader.u16()
    random = reader.take(32)
    session_id = reader.vector(1)
    cipher_suite = reader.u16()
    compression = reader.u8()
    extensions = _decode_extensions(reader)
    reader.expect_end()

    selected_version: int | None = None
    selected_group: int | None = None
    for ext in extensions:
        if ext.ext_type == ExtensionType.SUPPORTED_VERSIONS:
            if len(ext.data) != 2:
                raise DecodeError("malformed server supported_versions")
            selected_version = int.from_bytes(ext.data, "big")
        elif ext.ext_type == ExtensionType.KEY_SHARE:
            if len(ext.data) < 2:
                raise DecodeError("malformed server key_share")
            selected_group = int.from_bytes(ext.data[:2], "big")
    return ServerHello(
        version=version,
        random=random,
        session_id=session_id,
        cipher_suite=cipher_suite,
        compression_method=compression,
        extensions=extensions,
        selected_version=selected_version,
        selected_group=selected_group,
    )


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def frame_handshake(handshake_type: int, body: bytes, record_version: int) -> bytes:
    """Wrap a handshake body in handshake + record headers."""
    if len(body) > 0xFFFFFF:
        raise ValueError("handshake body too large")
    handshake = bytes([handshake_type]) + len(body).to_bytes(3, "big") + body
    if len(handshake) > 0xFFFF:
        raise ValueError("record payload too large")
    return (
        bytes([RECORD_TYPE_HANDSHAKE])
        + record_version.to_bytes(2, "big")
        + len(handshake).to_bytes(2, "big")
        + handshake
    )


def unframe_handshake(data: bytes) -> tuple[int, int, bytes]:
    """Strip record + handshake headers.

    Returns ``(handshake_type, record_version, body)``.
    """
    reader = _Reader(data)
    record_type = reader.u8()
    if record_type != RECORD_TYPE_HANDSHAKE:
        raise DecodeError(f"not a handshake record (type {record_type})")
    record_version = reader.u16()
    payload = _Reader(reader.vector(2))
    reader.expect_end()
    handshake_type = payload.u8()
    body = payload.vector(3)
    payload.expect_end()
    return handshake_type, record_version, body


def frame_client_hello(hello: ClientHello) -> bytes:
    """Fully framed Client Hello as sent on the wire.

    The record-layer version is pinned at the legacy version (capped at
    TLS 1.2 as TLS 1.3 requires) for middlebox compatibility.
    """
    record_version = min(hello.legacy_version, 0x0303)
    return frame_handshake(
        HANDSHAKE_TYPE_CLIENT_HELLO, encode_client_hello(hello), record_version
    )


def parse_client_hello_record(data: bytes) -> ClientHello:
    """Parse a fully framed Client Hello record."""
    handshake_type, _, body = unframe_handshake(data)
    if handshake_type != HANDSHAKE_TYPE_CLIENT_HELLO:
        raise DecodeError(f"not a client hello (handshake type {handshake_type})")
    return decode_client_hello(body)


def frame_server_hello(hello: ServerHello) -> bytes:
    """Fully framed Server Hello as sent on the wire."""
    record_version = min(hello.version, 0x0303)
    return frame_handshake(
        HANDSHAKE_TYPE_SERVER_HELLO, encode_server_hello(hello), record_version
    )


def parse_server_hello_record(data: bytes) -> ServerHello:
    """Parse a fully framed Server Hello record."""
    handshake_type, _, body = unframe_handshake(data)
    if handshake_type != HANDSHAKE_TYPE_SERVER_HELLO:
        raise DecodeError(f"not a server hello (handshake type {handshake_type})")
    return decode_server_hello(body)
