"""TLS extension registry (RFC 6066 and friends).

Covers the IANA-assigned extension types that existed at the paper's
observation window (28 standardized types as of March 2018, §2.1), plus
the renegotiation-info signalling value and the GREASE-reserved points.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ExtensionType(enum.IntEnum):
    """IANA extension type code points."""

    SERVER_NAME = 0
    MAX_FRAGMENT_LENGTH = 1
    CLIENT_CERTIFICATE_URL = 2
    TRUSTED_CA_KEYS = 3
    TRUNCATED_HMAC = 4
    STATUS_REQUEST = 5
    USER_MAPPING = 6
    CLIENT_AUTHZ = 7
    SERVER_AUTHZ = 8
    CERT_TYPE = 9
    SUPPORTED_GROUPS = 10  # previously "elliptic_curves"
    EC_POINT_FORMATS = 11
    SRP = 12
    SIGNATURE_ALGORITHMS = 13
    USE_SRTP = 14
    HEARTBEAT = 15
    APPLICATION_LAYER_PROTOCOL_NEGOTIATION = 16
    STATUS_REQUEST_V2 = 17
    SIGNED_CERTIFICATE_TIMESTAMP = 18
    CLIENT_CERTIFICATE_TYPE = 19
    SERVER_CERTIFICATE_TYPE = 20
    PADDING = 21
    ENCRYPT_THEN_MAC = 22
    EXTENDED_MASTER_SECRET = 23
    TOKEN_BINDING = 24
    CACHED_INFO = 25
    SESSION_TICKET = 35
    PRE_SHARED_KEY = 41
    EARLY_DATA = 42
    SUPPORTED_VERSIONS = 43
    COOKIE = 44
    PSK_KEY_EXCHANGE_MODES = 45
    CERTIFICATE_AUTHORITIES = 47
    OID_FILTERS = 48
    POST_HANDSHAKE_AUTH = 49
    SIGNATURE_ALGORITHMS_CERT = 50
    KEY_SHARE = 51
    NEXT_PROTOCOL_NEGOTIATION = 13172  # Google NPN, never IANA-standardized
    CHANNEL_ID = 30032                 # Google Channel ID
    RENEGOTIATION_INFO = 65281


@dataclass(frozen=True)
class Extension:
    """A TLS extension as carried in a hello message.

    ``ext_type`` is kept as a plain int so unknown / GREASE values survive
    a parse-reserialize round trip unmodified.
    """

    ext_type: int
    data: bytes = b""

    @property
    def name(self) -> str:
        try:
            return ExtensionType(self.ext_type).name.lower()
        except ValueError:
            return f"unknown_{self.ext_type}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<Extension {self.name} ({self.ext_type}), {len(self.data)} bytes>"


@dataclass(frozen=True)
class ExtensionInfo:
    """Registry metadata about one extension type."""

    ext_type: ExtensionType
    rfc: str
    tls13_relevant: bool = False
    note: str = ""


EXTENSION_REGISTRY: dict[int, ExtensionInfo] = {
    info.ext_type: info
    for info in (
        ExtensionInfo(ExtensionType.SERVER_NAME, "RFC 6066"),
        ExtensionInfo(ExtensionType.MAX_FRAGMENT_LENGTH, "RFC 6066"),
        ExtensionInfo(ExtensionType.CLIENT_CERTIFICATE_URL, "RFC 6066"),
        ExtensionInfo(ExtensionType.TRUSTED_CA_KEYS, "RFC 6066"),
        ExtensionInfo(ExtensionType.TRUNCATED_HMAC, "RFC 6066"),
        ExtensionInfo(ExtensionType.STATUS_REQUEST, "RFC 6066"),
        ExtensionInfo(ExtensionType.USER_MAPPING, "RFC 4681"),
        ExtensionInfo(ExtensionType.CLIENT_AUTHZ, "RFC 5878"),
        ExtensionInfo(ExtensionType.SERVER_AUTHZ, "RFC 5878"),
        ExtensionInfo(ExtensionType.CERT_TYPE, "RFC 6091"),
        ExtensionInfo(ExtensionType.SUPPORTED_GROUPS, "RFC 4492 / RFC 7919"),
        ExtensionInfo(ExtensionType.EC_POINT_FORMATS, "RFC 4492"),
        ExtensionInfo(ExtensionType.SRP, "RFC 5054"),
        ExtensionInfo(ExtensionType.SIGNATURE_ALGORITHMS, "RFC 5246"),
        ExtensionInfo(ExtensionType.USE_SRTP, "RFC 5764"),
        ExtensionInfo(
            ExtensionType.HEARTBEAT, "RFC 6520",
            note="DTLS keep-alive; the extension Heartbleed lived in (§5.4)",
        ),
        ExtensionInfo(ExtensionType.APPLICATION_LAYER_PROTOCOL_NEGOTIATION, "RFC 7301"),
        ExtensionInfo(ExtensionType.STATUS_REQUEST_V2, "RFC 6961"),
        ExtensionInfo(ExtensionType.SIGNED_CERTIFICATE_TIMESTAMP, "RFC 6962"),
        ExtensionInfo(ExtensionType.CLIENT_CERTIFICATE_TYPE, "RFC 7250"),
        ExtensionInfo(ExtensionType.SERVER_CERTIFICATE_TYPE, "RFC 7250"),
        ExtensionInfo(ExtensionType.PADDING, "RFC 7685"),
        ExtensionInfo(
            ExtensionType.ENCRYPT_THEN_MAC, "RFC 7366",
            note="the Lucky 13 countermeasure with very limited uptake (§9)",
        ),
        ExtensionInfo(ExtensionType.EXTENDED_MASTER_SECRET, "RFC 7627"),
        ExtensionInfo(ExtensionType.TOKEN_BINDING, "RFC 8472"),
        ExtensionInfo(ExtensionType.CACHED_INFO, "RFC 7924"),
        ExtensionInfo(ExtensionType.SESSION_TICKET, "RFC 5077"),
        ExtensionInfo(ExtensionType.PRE_SHARED_KEY, "RFC 8446", tls13_relevant=True),
        ExtensionInfo(ExtensionType.EARLY_DATA, "RFC 8446", tls13_relevant=True),
        ExtensionInfo(
            ExtensionType.SUPPORTED_VERSIONS, "RFC 8446", tls13_relevant=True,
            note="the TLS 1.3 version-negotiation mechanism analysed in §6.4",
        ),
        ExtensionInfo(ExtensionType.COOKIE, "RFC 8446", tls13_relevant=True),
        ExtensionInfo(ExtensionType.PSK_KEY_EXCHANGE_MODES, "RFC 8446", tls13_relevant=True),
        ExtensionInfo(ExtensionType.CERTIFICATE_AUTHORITIES, "RFC 8446", tls13_relevant=True),
        ExtensionInfo(ExtensionType.OID_FILTERS, "RFC 8446", tls13_relevant=True),
        ExtensionInfo(ExtensionType.POST_HANDSHAKE_AUTH, "RFC 8446", tls13_relevant=True),
        ExtensionInfo(ExtensionType.SIGNATURE_ALGORITHMS_CERT, "RFC 8446", tls13_relevant=True),
        ExtensionInfo(ExtensionType.KEY_SHARE, "RFC 8446", tls13_relevant=True),
        ExtensionInfo(ExtensionType.NEXT_PROTOCOL_NEGOTIATION, "draft-agl-tls-nextprotoneg"),
        ExtensionInfo(ExtensionType.CHANNEL_ID, "draft-balfanz-tls-channelid"),
        ExtensionInfo(
            ExtensionType.RENEGOTIATION_INFO, "RFC 5746",
            note="the RIE extension deployed in response to the renegotiation attack (§9)",
        ),
    )
}


def encode_supported_versions(wire_versions: list[int]) -> bytes:
    """Encode the body of a ``supported_versions`` Client Hello extension."""
    body = b"".join(v.to_bytes(2, "big") for v in wire_versions)
    return bytes([len(body)]) + body


def decode_supported_versions(data: bytes) -> list[int]:
    """Decode the body of a ``supported_versions`` Client Hello extension."""
    if not data:
        raise ValueError("empty supported_versions body")
    length = data[0]
    body = data[1 : 1 + length]
    if len(body) != length or length % 2 != 0:
        raise ValueError("malformed supported_versions body")
    return [int.from_bytes(body[i : i + 2], "big") for i in range(0, length, 2)]
