"""GREASE (RFC 8701) value generation and stripping.

Chrome injects reserved "GREASE" values into the cipher-suite list,
extension list, and supported-groups list to keep servers tolerant of
unknown code points.  The paper's fingerprinting methodology (§4)
identifies and removes these values before computing a fingerprint —
otherwise every Chrome connection would produce a fresh fingerprint.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

# All GREASE values follow the pattern 0xRaRa with R in 0..15.
GREASE_VALUES: tuple[int, ...] = tuple(
    (nibble << 12) | 0x0A00 | (nibble << 4) | 0x0A for nibble in range(16)
)

_GREASE_SET = frozenset(GREASE_VALUES)


def is_grease(value: int) -> bool:
    """True if ``value`` is one of the sixteen reserved GREASE code points."""
    return value in _GREASE_SET


def grease_values() -> tuple[int, ...]:
    """The sixteen reserved GREASE code points, ascending."""
    return GREASE_VALUES


def random_grease(rng: random.Random) -> int:
    """Pick one GREASE value uniformly, as a GREASE-ing client would."""
    return rng.choice(GREASE_VALUES)


def strip_grease(values: Iterable[int]) -> tuple[int, ...]:
    """Return ``values`` with every GREASE code point removed, order kept."""
    return tuple(v for v in values if v not in _GREASE_SET)


def inject_grease(values: Sequence[int], rng: random.Random) -> tuple[int, ...]:
    """Prepend a random GREASE value to a list, Chrome-style.

    Chrome places one GREASE value at the head of the cipher list and the
    extension list; we reproduce that placement so that stripping is
    position-independent but injection is realistic.
    """
    return (random_grease(rng), *values)
