"""Server-side TLS negotiation.

Models the Server Hello decision process of §2.1: "The server then
chooses its preferred options, among those offered by the client".
Covers classic (SSL 3 – TLS 1.2) version negotiation, the TLS 1.3
``supported_versions`` mechanism including draft versions (§6.4),
TLS_FALLBACK_SCSV downgrade protection (POODLE countermeasure, §2.2),
GREASE tolerance, curve agreement for ECC suites, and the misbehaving
servers of §5.5/§7.3 that choose suites the client never offered.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.tls.ciphers import (
    REGISTRY,
    CipherMode,
    CipherSuite,
    KexFamily,
    suite_by_code,
)
from repro.tls.extensions import ExtensionType
from repro.tls.grease import strip_grease
from repro.tls.messages import (
    Alert,
    AlertDescription,
    ClientHello,
    ServerHello,
)
from repro.tls.versions import (
    SSL3,
    TLS12,
    TLS13,
    ProtocolVersion,
    is_tls13_variant,
    version_by_wire,
)

FALLBACK_SCSV = 0x5600
RENEGOTIATION_INFO_SCSV = 0x00FF

# Extension types a server may echo when the client offered them.
_ECHOABLE = frozenset(
    int(t)
    for t in (
        ExtensionType.HEARTBEAT,
        ExtensionType.RENEGOTIATION_INFO,
        ExtensionType.SESSION_TICKET,
        ExtensionType.EXTENDED_MASTER_SECRET,
        ExtensionType.ENCRYPT_THEN_MAC,
        ExtensionType.STATUS_REQUEST,
        ExtensionType.EC_POINT_FORMATS,
        ExtensionType.APPLICATION_LAYER_PROTOCOL_NEGOTIATION,
        ExtensionType.SIGNED_CERTIFICATE_TIMESTAMP,
    )
)


class SelectionAnomaly(enum.Enum):
    """Misbehaviours observed in the wild (§5.5, §7.3)."""

    NONE = "none"
    # Interwise: client offered RC4_128_SHA, server chose EXP_RC4_40_MD5.
    CHOOSE_UNOFFERED = "choose_unoffered"
    # Hosts answering with GOST suites regardless of the offer.
    CHOOSE_GOST = "choose_gost"


@dataclass(frozen=True)
class SelectionPolicy:
    """How a server picks among mutually supported options."""

    server_preference: bool = True
    anomaly: SelectionAnomaly = SelectionAnomaly.NONE
    anomaly_suite: int | None = None


class HandshakeFailure(Exception):
    """Raised by :func:`negotiate` in strict mode on a failed handshake."""

    def __init__(self, alert: Alert, reason: str):
        super().__init__(reason)
        self.alert = alert
        self.reason = reason


@dataclass(frozen=True)
class HandshakeResult:
    """Outcome of a negotiation attempt.

    ``ok`` means the server produced a Server Hello; whether the *client*
    then proceeds (e.g. after an anomalous unoffered-suite choice) is the
    client model's decision, surfaced as ``client_aborts``.
    """

    client_hello: ClientHello
    server_hello: ServerHello | None = None
    alert: Alert | None = None
    reason: str = ""
    client_aborts: bool = False

    @property
    def ok(self) -> bool:
        return self.server_hello is not None

    @property
    def established(self) -> bool:
        """True if both sides would proceed to Change Cipher Spec."""
        return self.ok and not self.client_aborts

    @property
    def suite(self) -> CipherSuite | None:
        if self.server_hello is None:
            return None
        return REGISTRY.get(self.server_hello.cipher_suite)

    @property
    def version_wire(self) -> int | None:
        if self.server_hello is None:
            return None
        return self.server_hello.negotiated_version

    @property
    def version(self) -> ProtocolVersion | None:
        """Negotiated version; TLS 1.3 drafts normalize to TLS 1.3."""
        wire = self.version_wire
        if wire is None:
            return None
        if is_tls13_variant(wire):
            return TLS13
        try:
            return version_by_wire(wire)
        except KeyError:
            return None

    @property
    def curve(self) -> int | None:
        if self.server_hello is None:
            return None
        return self.server_hello.selected_group

    @property
    def forward_secret(self) -> bool:
        suite = self.suite
        return bool(suite and suite.forward_secret)

    @property
    def kex_family(self) -> KexFamily | None:
        suite = self.suite
        return suite.kex_family if suite else None

    @property
    def mode_class(self) -> str | None:
        suite = self.suite
        return suite.mode_class if suite else None

    @property
    def heartbeat_negotiated(self) -> bool:
        """Heartbeat offered by client and acknowledged by server (§5.4)."""
        return bool(
            self.server_hello is not None
            and self.client_hello.has_extension(ExtensionType.HEARTBEAT)
            and self.server_hello.has_extension(ExtensionType.HEARTBEAT)
        )


def suite_usable_at(suite: CipherSuite, version_wire: int) -> bool:
    """Whether a suite may be negotiated under a given protocol version.

    TLS 1.3 suites only under a 1.3 variant; legacy suites never under
    1.3; AEAD and SHA-2 CBC suites require at least TLS 1.2 (AEAD was
    introduced with TLS 1.2, §6.3.2).
    """
    tls13 = is_tls13_variant(version_wire)
    if suite.tls13_only:
        return tls13
    if tls13:
        return False
    if suite.is_aead and version_wire < TLS12.wire:
        return False
    from repro.tls.ciphers import MAC

    if suite.mac in (MAC.SHA256, MAC.SHA384) and version_wire < TLS12.wire:
        return False
    return True


def _select_version(
    hello: ClientHello,
    supported_versions: frozenset[int] | set[int],
) -> tuple[int | None, Alert | None, str]:
    """Pick the protocol version, honoring ``supported_versions``.

    Returns ``(version_wire, alert, reason)`` with exactly one of
    version / alert set.
    """
    server_tls13 = {v for v in supported_versions if is_tls13_variant(v)}
    if hello.supported_versions and server_tls13:
        # RFC 8446 §4.2.1: server picks its preferred version from the
        # client's list.  Preference: highest wire value it supports.
        mutual = [v for v in hello.offered_versions() if v in supported_versions]
        tls13_mutual = [v for v in mutual if is_tls13_variant(v)]
        if tls13_mutual:
            return max(tls13_mutual), None, ""
        if mutual:
            return max(mutual), None, ""
        return (
            None,
            Alert(AlertDescription.PROTOCOL_VERSION),
            "no mutual version in supported_versions",
        )

    classic_server = {v for v in supported_versions if not is_tls13_variant(v)}
    if not classic_server:
        return (
            None,
            Alert(AlertDescription.PROTOCOL_VERSION),
            "server speaks only TLS 1.3 and client did not offer it",
        )
    client_max = hello.legacy_version
    usable = {v for v in classic_server if v <= client_max}
    if not usable:
        return (
            None,
            Alert(AlertDescription.PROTOCOL_VERSION),
            f"client max {client_max:#06x} below server minimum",
        )
    return max(usable), None, ""


def negotiate(
    hello: ClientHello,
    supported_versions,
    suite_preference,
    supported_groups=(),
    echo_extensions=(),
    policy: SelectionPolicy = SelectionPolicy(),
    server_random: bytes = b"\x5a" * 32,
    strict: bool = False,
) -> HandshakeResult:
    """Run server-side negotiation against a Client Hello.

    Args:
        hello: The observed Client Hello.
        supported_versions: Wire versions the server accepts (ints; may
            include TLS 1.3 draft/experiment values).
        suite_preference: Cipher-suite code points the server supports,
            most-preferred first.
        supported_groups: Named-group code points for ECC suites,
            most-preferred first.
        echo_extensions: Extension type ints the server supports and will
            echo when offered.
        policy: Preference-order and anomaly behaviour.
        server_random: 32-byte server random for the Server Hello.
        strict: If True, raise :class:`HandshakeFailure` instead of
            returning an alert-carrying result.

    Returns:
        A :class:`HandshakeResult` carrying either a Server Hello or a
        fatal alert.
    """
    supported_versions = frozenset(int(v) for v in supported_versions)
    suite_preference = tuple(int(c) for c in suite_preference)

    def fail(alert: Alert, reason: str) -> HandshakeResult:
        if strict:
            raise HandshakeFailure(alert, reason)
        return HandshakeResult(client_hello=hello, alert=alert, reason=reason)

    version, alert, reason = _select_version(hello, supported_versions)
    if alert is not None:
        return fail(alert, reason)
    assert version is not None

    # TLS_FALLBACK_SCSV (RFC 7507): the client signals it is retrying at a
    # lower version; if the server supports something higher, refuse.
    offered = strip_grease(hello.cipher_suites)
    if FALLBACK_SCSV in offered and not hello.supported_versions:
        classic = {v for v in supported_versions if not is_tls13_variant(v)}
        if classic and max(classic) > hello.legacy_version:
            return fail(
                Alert(AlertDescription.INAPPROPRIATE_FALLBACK),
                "fallback SCSV with higher mutual version available",
            )

    # Anomalous servers pick their suite with no regard for the offer.
    if policy.anomaly is not SelectionAnomaly.NONE:
        anomaly_suite = policy.anomaly_suite
        if anomaly_suite is None:
            anomaly_suite = 0x0081 if policy.anomaly is SelectionAnomaly.CHOOSE_GOST else 0x0003
        server_hello = ServerHello(
            version=version,
            random=server_random,
            cipher_suite=anomaly_suite,
            extensions=(),
        )
        aborts = anomaly_suite not in offered
        return HandshakeResult(
            client_hello=hello,
            server_hello=server_hello,
            reason=f"anomalous selection {policy.anomaly.value}",
            client_aborts=aborts,
        )

    client_order = [c for c in offered if c in REGISTRY and not REGISTRY[c].scsv]
    client_set = set(client_order)
    usable_server = [
        c
        for c in suite_preference
        if c in REGISTRY and suite_usable_at(REGISTRY[c], version)
    ]

    server_groups = tuple(int(g) for g in supported_groups)
    client_groups = strip_grease(hello.supported_groups)

    def agree_curve(suite: CipherSuite) -> int | None:
        """First server-preferred group also offered by the client."""
        if suite.kex_family not in (KexFamily.ECDH, KexFamily.ECDHE):
            return None if not suite.tls13_only else _first_common_group()
        return _first_common_group()

    def _first_common_group() -> int | None:
        if not client_groups:
            # Pre-RFC-4492-extension clients: assume the default curves.
            return server_groups[0] if server_groups else None
        for group in server_groups:
            if group in client_groups:
                return group
        return None

    def curve_ok(suite: CipherSuite) -> bool:
        needs_curve = suite.kex_family in (KexFamily.ECDH, KexFamily.ECDHE)
        if suite.tls13_only:
            needs_curve = True
        if not needs_curve:
            return True
        return _first_common_group() is not None

    if policy.server_preference:
        candidates = [c for c in usable_server if c in client_set]
    else:
        usable_set = set(usable_server)
        candidates = [c for c in client_order if c in usable_set]

    chosen: CipherSuite | None = None
    for code in candidates:
        suite = REGISTRY[code]
        if curve_ok(suite):
            chosen = suite
            break
    if chosen is None:
        return fail(
            Alert(AlertDescription.HANDSHAKE_FAILURE),
            "no mutually supported cipher suite",
        )

    echo_set = set(int(t) for t in echo_extensions) & _ECHOABLE
    client_ext_types = set(hello.extension_types())
    echoed = tuple(
        _make_echo(t) for t in sorted(echo_set) if t in client_ext_types
    )
    # RFC 5746: the renegotiation-info SCSV is equivalent to the extension.
    if (
        int(ExtensionType.RENEGOTIATION_INFO) in echo_set
        and RENEGOTIATION_INFO_SCSV in offered
        and not any(e.ext_type == ExtensionType.RENEGOTIATION_INFO for e in echoed)
    ):
        echoed = echoed + (_make_echo(int(ExtensionType.RENEGOTIATION_INFO)),)

    tls13 = is_tls13_variant(version)
    server_hello = ServerHello(
        version=TLS12.wire if tls13 else version,
        random=server_random,
        cipher_suite=chosen.code,
        extensions=echoed,
        selected_version=version if tls13 else None,
        selected_group=agree_curve(chosen),
    )
    return HandshakeResult(client_hello=hello, server_hello=server_hello)


def _make_echo(ext_type: int):
    from repro.tls.extensions import Extension

    if ext_type == int(ExtensionType.HEARTBEAT):
        return Extension(ext_type, b"\x01")  # peer_allowed_to_send
    return Extension(ext_type, b"")
