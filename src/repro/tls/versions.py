"""SSL/TLS protocol version registry.

Reproduces Table 1 of the paper (release dates of all SSL/TLS versions)
and provides the wire encodings used by the record layer and the
``supported_versions`` extension, including the TLS 1.3 draft version
code points that §6.4 of the paper analyses.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class ProtocolVersion:
    """A single SSL/TLS protocol version.

    Attributes:
        name: Human-readable name, e.g. ``"TLSv12"``.
        pretty: Display name used in figures, e.g. ``"TLS 1.2"``.
        major: Wire major version byte.
        minor: Wire minor version byte.
        release_date: Date the protocol (or RFC) was published — Table 1.
        deprecated: True if the version is formally prohibited (RFC 6176,
            RFC 7568) or widely considered broken.
    """

    name: str
    pretty: str
    major: int
    minor: int
    release_date: _dt.date
    deprecated: bool = False

    @property
    def wire(self) -> int:
        """16-bit wire encoding (``major << 8 | minor``)."""
        return (self.major << 8) | self.minor

    def __lt__(self, other: "ProtocolVersion") -> bool:
        if not isinstance(other, ProtocolVersion):
            return NotImplemented
        return self.wire < other.wire

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.pretty


SSL2 = ProtocolVersion("SSLv2", "SSL 2", 0x00, 0x02, _dt.date(1995, 2, 9), deprecated=True)
SSL3 = ProtocolVersion("SSLv3", "SSL 3", 0x03, 0x00, _dt.date(1996, 11, 18), deprecated=True)
TLS10 = ProtocolVersion("TLSv10", "TLS 1.0", 0x03, 0x01, _dt.date(1999, 1, 19))
TLS11 = ProtocolVersion("TLSv11", "TLS 1.1", 0x03, 0x02, _dt.date(2006, 4, 1))
TLS12 = ProtocolVersion("TLSv12", "TLS 1.2", 0x03, 0x03, _dt.date(2008, 8, 1))
TLS13 = ProtocolVersion("TLSv13", "TLS 1.3", 0x03, 0x04, _dt.date(2018, 8, 10))

ALL_VERSIONS: tuple[ProtocolVersion, ...] = (SSL2, SSL3, TLS10, TLS11, TLS12, TLS13)

_BY_NAME = {v.name: v for v in ALL_VERSIONS}
_BY_WIRE = {v.wire: v for v in ALL_VERSIONS}

# TLS 1.3 draft code points observed in the wild via the supported_versions
# extension (§6.4).  0x7fNN encodes official draft NN; 0x7eNN are the
# experimental Google variants, of which 0x7e02 dominated the paper's data.
TLS13_DRAFT_BASE = 0x7F00
TLS13_GOOGLE_EXPERIMENT_BASE = 0x7E00


def tls13_draft(draft_number: int) -> int:
    """Wire value of an official TLS 1.3 draft, e.g. draft 18 -> 0x7f12."""
    if not 0 <= draft_number <= 0xFF:
        raise ValueError(f"draft number out of range: {draft_number}")
    return TLS13_DRAFT_BASE | draft_number


def tls13_google_experiment(variant: int) -> int:
    """Wire value of an experimental Google TLS 1.3 variant (e.g. 2 -> 0x7e02)."""
    if not 0 <= variant <= 0xFF:
        raise ValueError(f"variant out of range: {variant}")
    return TLS13_GOOGLE_EXPERIMENT_BASE | variant


def is_tls13_variant(wire: int) -> bool:
    """True for final TLS 1.3, any official draft, or a Google experiment."""
    return (
        wire == TLS13.wire
        or (wire & 0xFF00) == TLS13_DRAFT_BASE
        or (wire & 0xFF00) == TLS13_GOOGLE_EXPERIMENT_BASE
    )


def version_by_name(name: str) -> ProtocolVersion:
    """Look up a version by its canonical name (``"TLSv12"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown protocol version name: {name!r}") from None


def version_by_wire(wire: int) -> ProtocolVersion:
    """Look up a version by its 16-bit wire encoding."""
    try:
        return _BY_WIRE[wire]
    except KeyError:
        raise KeyError(f"unknown protocol version wire value: {wire:#06x}") from None


def release_date_table() -> list[tuple[str, str]]:
    """Rows of Table 1: (version pretty-name, release month-year)."""
    return [(v.pretty, v.release_date.strftime("%b. %Y")) for v in ALL_VERSIONS]
