"""Named-group (elliptic-curve) registry, RFC 4492 / RFC 7919 / RFC 8446.

§6.3.3 of the paper analyses the distribution of negotiated curves
(secp256r1 84.4%, secp384r1 8.6%, x25519 6.7%, sect571r1 0.2%,
secp521r1 0.1%); this registry provides the constants and metadata for
that analysis, including the finite-field groups of RFC 7919.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NamedCurve:
    """One named group from the IANA registry."""

    code: int
    name: str
    bits: int
    kind: str  # "prime", "char2", "montgomery", "ffdhe"
    nist_backed: bool = True

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<NamedCurve {self.name} ({self.code})>"


_CURVES: tuple[NamedCurve, ...] = (
    NamedCurve(1, "sect163k1", 163, "char2"),
    NamedCurve(2, "sect163r1", 163, "char2"),
    NamedCurve(3, "sect163r2", 163, "char2"),
    NamedCurve(4, "sect193r1", 193, "char2"),
    NamedCurve(5, "sect193r2", 193, "char2"),
    NamedCurve(6, "sect233k1", 233, "char2"),
    NamedCurve(7, "sect233r1", 233, "char2"),
    NamedCurve(8, "sect239k1", 239, "char2"),
    NamedCurve(9, "sect283k1", 283, "char2"),
    NamedCurve(10, "sect283r1", 283, "char2"),
    NamedCurve(11, "sect409k1", 409, "char2"),
    NamedCurve(12, "sect409r1", 409, "char2"),
    NamedCurve(13, "sect571k1", 571, "char2"),
    NamedCurve(14, "sect571r1", 571, "char2"),
    NamedCurve(15, "secp160k1", 160, "prime"),
    NamedCurve(16, "secp160r1", 160, "prime"),
    NamedCurve(17, "secp160r2", 160, "prime"),
    NamedCurve(18, "secp192k1", 192, "prime"),
    NamedCurve(19, "secp192r1", 192, "prime"),
    NamedCurve(20, "secp224k1", 224, "prime"),
    NamedCurve(21, "secp224r1", 224, "prime"),
    NamedCurve(22, "secp256k1", 256, "prime"),
    NamedCurve(23, "secp256r1", 256, "prime"),
    NamedCurve(24, "secp384r1", 384, "prime"),
    NamedCurve(25, "secp521r1", 521, "prime"),
    NamedCurve(26, "brainpoolP256r1", 256, "prime", nist_backed=False),
    NamedCurve(27, "brainpoolP384r1", 384, "prime", nist_backed=False),
    NamedCurve(28, "brainpoolP512r1", 512, "prime", nist_backed=False),
    # x25519 is "seen as being independent of NSA influence" (§6.3.3).
    NamedCurve(29, "x25519", 253, "montgomery", nist_backed=False),
    NamedCurve(30, "x448", 446, "montgomery", nist_backed=False),
    NamedCurve(256, "ffdhe2048", 2048, "ffdhe", nist_backed=False),
    NamedCurve(257, "ffdhe3072", 3072, "ffdhe", nist_backed=False),
    NamedCurve(258, "ffdhe4096", 4096, "ffdhe", nist_backed=False),
    NamedCurve(259, "ffdhe6144", 6144, "ffdhe", nist_backed=False),
    NamedCurve(260, "ffdhe8192", 8192, "ffdhe", nist_backed=False),
)

CURVE_REGISTRY: dict[int, NamedCurve] = {c.code: c for c in _CURVES}
_BY_NAME: dict[str, NamedCurve] = {c.name: c for c in _CURVES}

# Aliases used by the paper and by OpenSSL tooling.
_BY_NAME["curve25519"] = _BY_NAME["x25519"]
_BY_NAME["prime256v1"] = _BY_NAME["secp256r1"]

# Code points widely used in the period.
SECP256R1 = _BY_NAME["secp256r1"]
SECP384R1 = _BY_NAME["secp384r1"]
SECP521R1 = _BY_NAME["secp521r1"]
SECT571R1 = _BY_NAME["sect571r1"]
X25519 = _BY_NAME["x25519"]


class UnknownCurve(KeyError):
    """Raised when a curve code point or name is not registered."""


def curve_by_code(code: int) -> NamedCurve:
    """Look up a named group by IANA code point."""
    try:
        return CURVE_REGISTRY[code]
    except KeyError:
        raise UnknownCurve(f"unknown named curve code {code}") from None


def curve_by_name(name: str) -> NamedCurve:
    """Look up a named group by name (accepts x25519/curve25519 aliases)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise UnknownCurve(f"unknown named curve {name!r}") from None


# EC point format code points (RFC 4492 §5.1.2).
POINT_FORMAT_UNCOMPRESSED = 0
POINT_FORMAT_ANSIX962_COMPRESSED_PRIME = 1
POINT_FORMAT_ANSIX962_COMPRESSED_CHAR2 = 2
