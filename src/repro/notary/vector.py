"""The vectorized (numpy) query tier over the packed shape matrix.

This module sits between the store's aggregate-index counters and its
shape-compiled tier.  The shape tier's documented ceiling is one
Python-level predicate call per distinct shape per month; this tier
removes it.  The packed payload carries an int-coded **shape matrix**
(:func:`repro.engine.partition.build_shape_matrix`): per shape field, a
vocabulary of distinct canonical values plus one code per shape.  A
predicate that declares a ``vector_field`` is evaluated once per
*distinct value* of that field — typically a handful — on a stub record
carrying only that field; the per-value verdicts then broadcast to a
per-shape boolean mask by integer gather (``flags[codes]``), and
``All``/``AnyOf``/``Not`` combine child masks with boolean algebra.

**Byte identity.**  The headline invariant of the query engine is that
every tier returns bit-equal floats to the record scan, and IEEE
addition is not associative — so the folds here never use
``numpy.sum`` (pairwise summation: a *different* addition order).
Every reduction selects the matching rows in record order and folds
them with ``numpy.cumsum``, whose accumulation is defined sequentially
(``out[i] = out[i-1] + a[i]``) — the *same partial sums in the same
order* as the scan's left fold, just executed in C.  Means keep two
independent row-order folds (Σw·v with elementwise products, and Σw),
matching the scan's interleaved accumulator pair because each
accumulator sees an identical operand sequence either way.

numpy is optional (the ``fast`` extra).  When it is absent — or a
predicate doesn't compile — everything here returns ``None`` and the
store falls through to the shape tier, which answers the same bytes.
"""

from __future__ import annotations

import datetime as _dt

try:  # pragma: no branch
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

from repro.notary.events import ConnectionRecord
from repro.obs import emit_event

#: Per-field expansion from the canonical shape encoding back to the
#: record-level type predicates actually read (mirrors
#: ``partition._shape_fields`` for the fields the vector tier serves).
_EXPAND = {
    "advertised": frozenset,
    "positions": dict,
}

#: Compilation memo cap per matrix (same discipline as the dataset's
#: shape-compilation memos).
_CACHE_LIMIT = 256


def available() -> bool:
    """Whether the vector tier can serve queries (numpy importable)."""
    return _np is not None


def _stub(field: str, value):
    """A record carrying only ``field`` (canonical value expanded).

    Evaluating the predicate itself on the stub — instead of
    reimplementing its logic per class — keeps the vector tier's
    verdicts definitionally identical to the scan's, including for
    derived properties (``negotiated_mode_class`` et al. read only
    ``negotiated_suite``, which the stub provides).  A predicate that
    reads any *other* field raises ``AttributeError``, the compile
    returns ``None``, and the query falls through — the same guard
    contract as the shape tier's guarded templates.
    """
    record = object.__new__(ConnectionRecord)
    expand = _EXPAND.get(field)
    record.__dict__[field] = value if expand is None else expand(value)
    return record


class ShapeMatrix:
    """numpy-side view of one dataset's shape matrix.

    Owns the per-field code arrays (copied into numpy once, lazily per
    field) and the predicate/value compilation memos.  Built per
    dataset and invalidated wholesale when a month is appended (codes
    are append-only, but a compiled mask's *length* goes stale).
    """

    __slots__ = ("_fields", "_codes", "_mask_cache", "_value_cache")

    def __init__(self, matrix_payload: dict) -> None:
        self._fields = matrix_payload["fields"]
        self._codes: dict = {}
        self._mask_cache: dict = {}
        self._value_cache: dict = {}

    def _field_codes(self, field: str):
        codes = self._codes.get(field)
        if codes is None:
            codes = self._codes[field] = _np.array(
                self._fields[field]["codes"], dtype=_np.intp
            )
        return codes

    # ---- predicate masks ----------------------------------------------------

    def compile_mask(self, predicate):
        """Per-shape boolean mask for ``predicate``, or None when it is
        not vector-compilable.  Memoized per callable (value-hashable
        predicates memoize across equal instances)."""
        try:
            return self._mask_cache[predicate]
        except KeyError:
            pass
        except TypeError:  # unhashable callable: compile uncached
            return self._compile_mask(predicate)
        if len(self._mask_cache) >= _CACHE_LIMIT:
            self._mask_cache.clear()
        mask = self._compile_mask(predicate)
        self._mask_cache[predicate] = mask
        return mask

    def _compile_mask(self, predicate):
        # Imported here (not at module top) to keep this module usable
        # when query.py is mid-import via the store.
        from repro.notary.query import All, AnyOf, Not

        if isinstance(predicate, Not):
            child = self.compile_mask(predicate.predicates[0])
            return None if child is None else ~child
        if isinstance(predicate, (All, AnyOf)):
            children = []
            for child in predicate.predicates:
                mask = self.compile_mask(child)
                if mask is None:
                    return None
                children.append(mask)
            n = self.n_shapes()
            if isinstance(predicate, All):
                combined = _np.ones(n, dtype=bool)
                for mask in children:
                    combined &= mask
            else:
                combined = _np.zeros(n, dtype=bool)
                for mask in children:
                    combined |= mask
            return combined
        field = getattr(predicate, "vector_field", None)
        if not field or field not in self._fields:
            return None
        vocab = self._fields[field]["vocab"]
        try:
            flags = _np.fromiter(
                (bool(predicate(_stub(field, value))) for value in vocab),
                dtype=bool,
                count=len(vocab),
            )
        except Exception:  # lint: allow-swallow
            # Not vector-evaluable (reads beyond its declared field):
            # the contract is "None means next tier", by design.
            return None
        return flags[self._field_codes(field)]

    # ---- value functions ----------------------------------------------------

    def compile_values(self, value):
        """``(per-shape float64 values, per-shape validity mask)`` for a
        ``weighted_mean`` value function, or None."""
        try:
            return self._value_cache[value]
        except KeyError:
            pass
        except TypeError:
            return self._compile_values(value)
        if len(self._value_cache) >= _CACHE_LIMIT:
            self._value_cache.clear()
        compiled = self._compile_values(value)
        self._value_cache[value] = compiled
        return compiled

    def _compile_values(self, value):
        field = getattr(value, "vector_field", None)
        if not field or field not in self._fields:
            return None
        vocab = self._fields[field]["vocab"]
        try:
            per_value = [value(_stub(field, entry)) for entry in vocab]
        except Exception:  # lint: allow-swallow
            # Same contract as _compile_mask: None means "next tier".
            return None
        size = len(per_value)
        valid = _np.fromiter((v is not None for v in per_value), bool, count=size)
        # None slots carry 0.0 but are masked out before any arithmetic,
        # so the placeholder never reaches a fold.  int values convert
        # exactly (the scan's ``w * v`` promotes them identically).
        vals = _np.fromiter(
            (0.0 if v is None else float(v) for v in per_value),
            _np.float64,
            count=size,
        )
        codes = self._field_codes(field)
        return vals[codes], valid[codes]

    def n_shapes(self) -> int:
        for entry in self._fields.values():
            return len(entry["codes"])
        return 0


class VectorView:
    """One packed month's numpy columns + byte-identical fold kernels.

    Columns are copied out of the payload arrays once per view (cheap,
    and it avoids exporting buffers on arrays the ingest path may still
    append to elsewhere in the payload).  Views are immutable and
    shared per dataset, like ``_ShapeView``.
    """

    __slots__ = ("matrix", "weights", "idxs", "total", "established")

    def __init__(self, dataset, month: _dt.date, matrix: ShapeMatrix) -> None:
        summary = dataset.shape_summary(month)
        weights, idxs = dataset.columns(month)
        self.matrix = matrix
        self.weights = _np.array(weights, dtype=_np.float64)
        self.idxs = _np.array(idxs, dtype=_np.intp)
        self.total = summary["total"]
        self.established = summary["established"]

    def _fold(self, selected) -> float:
        """Left fold of ``selected`` in row order, bit-equal to the
        scan's ``sum()``: ``cumsum`` accumulates sequentially, one IEEE
        addition per element (never ``np.sum`` — pairwise summation is
        a different addition order, hence different last bits)."""
        if selected.size == 0:
            return 0.0
        return float(_np.cumsum(selected)[-1])

    def weight_of(self, mask) -> float:
        """Total weight of rows whose shape is in ``mask`` (exact)."""
        return self._fold(self.weights[mask[self.idxs]])

    def restrict_weights(self, within_mask, mask) -> tuple[float, float]:
        """(denominator, numerator) folds under a ``within`` restriction,
        mirroring the scan: both fold their row subsequence from zero."""
        within_rows = within_mask[self.idxs]
        total = self._fold(self.weights[within_rows])
        matched = self._fold(self.weights[(within_mask & mask)[self.idxs]])
        return total, matched

    def mean_of(self, values, valid) -> float | None:
        """Row-order weighted mean of per-shape values (exact): the
        products are the scan's own ``w * v`` multiplications, and each
        accumulator folds its identical operand sequence."""
        rows = valid[self.idxs]
        weights = self.weights[rows]
        total = self._fold(weights)
        if total <= 0:
            return None
        acc = self._fold(weights * values[self.idxs[rows]])
        return acc / total


def matrix_for(dataset) -> ShapeMatrix | None:
    """The dataset's (shared, memoized) numpy shape matrix, or None."""
    if _np is None:
        return None
    matrix = getattr(dataset, "_vector_matrix", None)
    if matrix is None:
        matrix = dataset._vector_matrix = ShapeMatrix(dataset.shape_matrix())
    return matrix


def view_for(dataset, month: _dt.date) -> VectorView | None:
    """The month's (shared, memoized) vector view, or None.

    Shared per dataset exactly like ``_ShapeView`` — every store
    attaching the same packed dataset reuses the numpy columns and the
    compilation memos.  Callers have already excluded day-carrying
    months (same restriction as the shape tier).
    """
    if _np is None:
        return None
    matrix = matrix_for(dataset)
    if matrix is None:
        return None
    shared = getattr(dataset, "_vector_view_cache", None)
    if shared is None:
        shared = dataset._vector_view_cache = {}
    view = shared.get(month)
    if view is None:
        view = shared[month] = VectorView(dataset, month, matrix)
        emit_event(
            "vector_path",
            month=month.isoformat(),
            outcome="view_build",
            shapes=matrix.n_shapes(),
            rows=int(view.weights.size),
        )
    return view
