"""The passive monitor: a Zeek-style observer of TLS handshakes.

The monitor sees a Client Hello and the server's response, extracts
protocol metadata, and appends a :class:`ConnectionRecord` to its store
— the same pipeline the ICSI SSL Notary runs on top of Bro/Zeek (§3.1).
It never inspects the client object itself, only wire-visible data
(labels are carried through for ground-truth validation but are not
consulted by any analysis that the paper could not have run).

Two entry points: :meth:`PassiveMonitor.observe` takes parsed message
objects (the simulation path), :meth:`PassiveMonitor.observe_wire`
takes raw record bytes the way a tap would deliver them — it parses
both flights, tolerates malformed data ("best effort", §3.1), and
recognizes SSL 2 first flights by sniffing.
"""

from __future__ import annotations

import datetime as _dt

from repro.engine.perf import PERF
from repro.notary.events import ConnectionRecord, make_record
from repro.notary.store import NotaryStore, month_of
from repro.tls.handshake import HandshakeResult
from repro.tls.messages import ClientHello

#: When the Notary gained the fields needed for fingerprinting (§4.0.1).
FINGERPRINT_FIELDS_SINCE = _dt.date(2014, 2, 1)


class PassiveMonitor:
    """Observes handshakes and accumulates connection records."""

    def __init__(
        self,
        store: NotaryStore | None = None,
        fingerprint_fields_since: _dt.date = FINGERPRINT_FIELDS_SINCE,
    ) -> None:
        self.store = store if store is not None else NotaryStore()
        self.fingerprint_fields_since = fingerprint_fields_since

    def observe(
        self,
        day: _dt.date,
        hello: ClientHello,
        result: HandshakeResult,
        weight: float = 1.0,
        client_family: str = "unknown",
        client_version: str = "",
        client_category: str = "",
        client_in_database: bool = False,
        exact_day: bool = False,
        server_profile: str = "",
        server_port: int | None = None,
    ) -> ConnectionRecord:
        """Record one handshake observation; returns the stored record.

        ``exact_day`` keeps per-day resolution (Monte-Carlo sampling);
        expectation mode stores month granularity only.
        """
        record = make_record(
            month=month_of(day),
            day=day if exact_day else None,
            server_profile=server_profile,
            server_port=server_port,
            weight=weight,
            hello=hello,
            result=result,
            client_family=client_family,
            client_version=client_version,
            client_category=client_category,
            client_in_database=client_in_database,
            record_fingerprint=day >= self.fingerprint_fields_since,
        )
        self.store.add(record)
        PERF.records += 1
        return record

    def observe_wire(
        self,
        day: _dt.date,
        client_flight: bytes,
        server_flight: bytes | None = None,
        weight: float = 1.0,
        server_profile: str = "",
        server_port: int | None = None,
    ) -> ConnectionRecord | None:
        """Record a connection from raw first-flight bytes.

        Parses the client's record (TLS Client Hello, or an SSL 2
        CLIENT-HELLO recognized by sniffing) and, when present, the
        server's record.  Malformed flights are dropped silently —
        §3.1's "best effort" collection — and the method returns None.
        """
        from repro.tls.ssl2 import Ssl2DecodeError, decode_client_hello as decode_ssl2
        from repro.tls.ssl2 import looks_like_ssl2
        from repro.tls.wire import (
            DecodeError,
            parse_client_hello_record,
            parse_server_hello_record,
        )

        if looks_like_ssl2(client_flight):
            try:
                ssl2_hello = decode_ssl2(client_flight)
            except Ssl2DecodeError:
                return None
            record = self._ssl2_record(
                day, ssl2_hello, weight, server_profile, server_port
            )
            self.store.add(record)
            return record

        try:
            hello = parse_client_hello_record(client_flight)
        except DecodeError:
            return None

        server_hello = None
        if server_flight is not None:
            try:
                server_hello = parse_server_hello_record(server_flight)
            except DecodeError:
                server_hello = None
        result = HandshakeResult(client_hello=hello, server_hello=server_hello)
        return self.observe(
            day=day,
            hello=hello,
            result=result,
            weight=weight,
            server_profile=server_profile,
            server_port=server_port,
        )

    def _ssl2_record(
        self, day, ssl2_hello, weight, server_profile, server_port
    ) -> ConnectionRecord:
        tags = {"rc4"} if any(
            kind in (0x010080, 0x020080) for kind in ssl2_hello.cipher_kinds
        ) else set()
        if ssl2_hello.offers_export:
            tags.add("export")
        return ConnectionRecord(
            month=month_of(day),
            weight=weight,
            client_family="unknown",
            client_version="",
            client_category="",
            client_in_database=False,
            fingerprint=None,
            advertised=frozenset(tags),
            positions={},
            suite_count=len(ssl2_hello.cipher_kinds),
            offered_tls13=False,
            offered_tls13_versions=(),
            established=True,
            negotiated_version="SSLv2",
            negotiated_wire=0x0002,
            negotiated_suite=None,
            negotiated_curve=None,
            heartbeat_negotiated=False,
            server_chose_unoffered=False,
            server_profile=server_profile,
            server_port=server_port,
            day=day,
        )
