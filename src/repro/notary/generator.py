"""Traffic generation: client population x server population -> records.

Two modes:

* **Expectation mode** — for every month, every active client release is
  negotiated against every active server variant and the resulting
  record carries the product weight.  Handshakes are cached on
  (release, tls13-flag, server-variant) since both configurations are
  date-independent; a full 2012–2018 run costs only a few thousand real
  negotiations.  This mode produces exact, noise-free monthly series —
  the right tool for Figures 1–3 and 5–10.

* **Monte-Carlo mode** — samples individual connections with real
  randomness (GREASE values, cipher-order shuffling, staged TLS 1.3
  rollouts), at day granularity.  This is the tool for fingerprint
  statistics (§4.1), where per-connection variability is the object of
  study.

Niche clients route to their matching endpoints via an affinity map
(GRID movers to GRID servers, Nagios probes to Nagios servers, Interwise
clients to Interwise servers), mirroring how those connections occur in
the monitored networks.
"""

from __future__ import annotations

import datetime as _dt
import random
import zlib
from dataclasses import dataclass, field

from repro.clients.population import ClientPopulation
from repro.clients.profile import ClientRelease
from repro.engine.perf import PERF
from repro.notary.monitor import PassiveMonitor
from repro.servers.config import ServerProfile
from repro.servers.population import ServerPopulation
from repro.tls.handshake import HandshakeResult
from repro.tls.messages import ClientHello

#: Which client families talk to dedicated endpoints instead of the
#: mainstream server mix.
DEFAULT_AFFINITY: dict[str, str] = {
    "GridFTP": "grid",
    "Nagios NRPE": "nagios",
    "Interwise": "interwise",
    "Splunk forwarder": "splunk",
}


def _release_seed(release: ClientRelease, tls13: bool) -> int:
    """Stable hello seed for a release.

    Must not depend on the interpreter's string-hash randomization
    (``PYTHONHASHSEED``): run-to-run reproducibility and the parallel
    runner's serial-equivalence both require every process to derive
    the same seed for the same release.
    """
    token = f"{release.family}\x00{release.version}\x00{int(tls13)}"
    return zlib.crc32(token.encode("utf-8")) & 0x7FFFFFFF


@dataclass
class TrafficGenerator:
    """Drives handshakes between the two populations into a monitor."""

    clients: ClientPopulation
    servers: ServerPopulation
    monitor: PassiveMonitor
    affinity: dict[str, str] = field(default_factory=lambda: dict(DEFAULT_AFFINITY))
    #: Dataset scale multiplier (``--scale`` / ``REPRO_SCALE``): every
    #: expectation record is emitted ``scale`` times at ``weight/scale``,
    #: so per-month *record counts* grow by the factor while month
    #: totals and fractions stay put.  ``1`` is the seed dataset exactly
    #: (weights untouched, byte-identical records).
    scale: int = 1

    def __post_init__(self) -> None:
        self._hello_cache: dict[tuple[str, str, bool], ClientHello] = {}
        self._result_cache: dict[tuple[str, str, bool, str], HandshakeResult] = {}

    # ---- expectation mode ---------------------------------------------------

    def _static_hello(self, release: ClientRelease, tls13: bool) -> ClientHello:
        key = (release.family, release.version, tls13)
        hello = self._hello_cache.get(key)
        if hello is None:
            rng = random.Random(_release_seed(release, tls13))
            hello = release.build_hello(rng=rng, include_tls13=tls13)
            self._hello_cache[key] = hello
            PERF.hello_builds += 1
        else:
            PERF.hello_cache_hits += 1
        return hello

    #: Clients released after this date append TLS_FALLBACK_SCSV on
    #: dance retries (RFC 7507 shipped in early 2014).
    SCSV_DEPLOYED = _dt.date(2014, 2, 1)

    def _negotiate(
        self, release: ClientRelease, tls13: bool, server: ServerProfile
    ) -> tuple[ClientHello, HandshakeResult]:
        hello = self._static_hello(release, tls13)
        key = (release.family, release.version, tls13, server.name)
        result = self._result_cache.get(key)
        if result is None:
            PERF.negotiations += 1
            result = server.respond(hello)
            if (
                not result.ok
                and result.reason == "version-intolerant server"
            ):
                # The client runs its downgrade dance (repro.tls.fallback)
                # against the broken stack.
                from repro.tls.fallback import downgrade_dance

                dance = downgrade_dance(
                    release,
                    server,
                    hello=hello,
                    send_scsv=release.released >= self.SCSV_DEPLOYED,
                )
                if dance.final is not None:
                    result = dance.final
            if release.tolerates_unoffered_suite and result.client_aborts:
                # Interwise-style clients proceed anyway (§5.5).
                result = HandshakeResult(
                    client_hello=result.client_hello,
                    server_hello=result.server_hello,
                    reason=result.reason,
                    client_aborts=False,
                )
            self._result_cache[key] = result
        else:
            PERF.handshake_cache_hits += 1
        return hello, result

    def _tls13_splits(
        self, release: ClientRelease, month: _dt.date
    ) -> list[tuple[bool, float]]:
        """Weight split between hellos with and without supported_versions."""
        if not release.supported_versions:
            return [(False, 1.0)]
        fraction = min(max(release.tls13_fraction_at(month), 0.0), 1.0)
        splits = []
        if fraction > 0:
            splits.append((True, fraction))
        if fraction < 1:
            splits.append((False, 1.0 - fraction))
        return splits

    def stream_expectation_month(self, month: _dt.date):
        """Yield the month's expectation records without storing them.

        This is the bounded-memory ingest path: records are generated
        one at a time straight into whatever consumes the stream
        (``StreamPacker`` in the runner), so a month's record objects
        never coexist.  The record sequence is exactly what
        :meth:`run_expectation_month` pushes into the monitor's store —
        same ``make_record`` calls, same order — so a streamed pack is
        byte-identical to a batch pack of the stored records.

        At ``scale > 1`` each base record is yielded ``scale`` times at
        ``weight/scale`` (the *same* frozen record object, so replicas
        cost O(1) each downstream): record counts multiply, month-total
        weight and every fraction stay at the base values up to float
        associativity.
        """
        from repro.notary.events import make_record
        from repro.notary.store import month_of
        from repro.servers.population import DEDICATED_PORTS

        scale = max(1, int(self.scale))
        record_month = month_of(month)
        fingerprint = month >= self.monitor.fingerprint_fields_since
        client_mix = self.clients.mix(month)
        server_mix = self.servers.mix(month, weighting="traffic")
        for release, client_weight in client_mix:
            tag = self.affinity.get(release.family)
            destinations: list[tuple[ServerProfile, float]]
            if tag is not None:
                destinations = [(self.servers.dedicated(tag), 1.0)]
                port = DEDICATED_PORTS.get(tag, 443)
            else:
                destinations = server_mix
                port = 443
            for tls13, tls13_weight in self._tls13_splits(release, month):
                for server, server_weight in destinations:
                    weight = client_weight * tls13_weight * server_weight
                    if weight <= 0:
                        continue
                    hello, result = self._negotiate(release, tls13, server)
                    record = make_record(
                        month=record_month,
                        day=None,
                        server_profile=server.name,
                        server_port=port,
                        weight=weight if scale == 1 else weight / scale,
                        hello=hello,
                        result=result,
                        client_family=release.family,
                        client_version=release.version,
                        client_category=release.category,
                        client_in_database=release.in_database,
                        record_fingerprint=fingerprint,
                    )
                    PERF.records += scale
                    for _ in range(scale):
                        yield record
        ssl2 = self._ssl2_record(month, scale)
        if ssl2 is not None:
            PERF.records += scale
            for _ in range(scale):
                yield ssl2

    def run_expectation_month(self, month: _dt.date) -> None:
        """Generate the full expectation-weighted record set for a month.

        Materializing wrapper over :meth:`stream_expectation_month`:
        every streamed record lands in the monitor's store, preserving
        the historical contract (tests and the zeeklog exporter read
        the store directly).  Scaled or bulk ingest should consume the
        stream instead.
        """
        store = self.monitor.store
        for record in self.stream_expectation_month(month):
            store.add(record)

    #: Monthly connection-weight of the SSL 2 relic traffic: ~1.2K of
    #: the Notary's billions of monthly connections (§5.1), terminating
    #: at one university's Nagios endpoints.
    SSL2_WEIGHT = 2e-7

    def _ssl2_record(self, month: _dt.date, scale: int = 1) -> "ConnectionRecord | None":
        """The §5.1 SSL 2 remnant as one pre-classified record (or None).

        SSL 2 uses an incompatible record format the ClientHello model
        does not express (see repro.tls.ssl2); the monitor classifies
        such first flights by sniffing and records them directly.
        """
        if self.SSL2_WEIGHT <= 0:
            return None
        from repro.notary.events import ConnectionRecord
        from repro.notary.store import month_of

        weight = self.SSL2_WEIGHT if scale == 1 else self.SSL2_WEIGHT / scale
        return ConnectionRecord(
            month=month_of(month),
            weight=weight,
            client_family="Nagios NRPE",
            client_version="ssl2-probe",
            client_category="OS Tools and Services",
            client_in_database=False,
            fingerprint=None,
            advertised=frozenset({"rc4", "export"}),
            positions={},
            suite_count=2,
            offered_tls13=False,
            offered_tls13_versions=(),
            established=True,
            negotiated_version="SSLv2",
            negotiated_wire=0x0002,
            negotiated_suite=None,
            negotiated_curve=None,
            heartbeat_negotiated=False,
            server_chose_unoffered=False,
            server_profile="nagios-server",
            server_port=5666,
        )

    def run_expectation(self, start: _dt.date, end: _dt.date) -> None:
        """Expectation mode over every month from ``start`` to ``end``."""
        from repro.notary.store import month_range

        for month in month_range(start, end):
            self.run_expectation_month(month)

    # ---- Monte-Carlo mode ---------------------------------------------------

    def run_montecarlo(
        self,
        start: _dt.date,
        end: _dt.date,
        connections_per_month: int,
        rng: random.Random,
    ) -> None:
        """Sample individual connections at day granularity."""
        from repro.notary.store import month_range

        from repro.servers.population import DEDICATED_PORTS

        for month in month_range(start, end):
            client_mix = self.clients.mix(month)
            releases = [r for r, _ in client_mix]
            client_weights = [w for _, w in client_mix]
            server_mix = self.servers.mix(month, weighting="traffic")
            servers = [s for s, _ in server_mix]
            server_weights = [w for _, w in server_mix]
            days_in_month = (
                (month.replace(day=28) + _dt.timedelta(days=4)).replace(day=1) - month
            ).days
            for _ in range(connections_per_month):
                release = rng.choices(releases, client_weights)[0]
                tag = self.affinity.get(release.family)
                if tag is not None:
                    server = self.servers.dedicated(tag)
                    port = DEDICATED_PORTS.get(tag, 443)
                else:
                    server = rng.choices(servers, server_weights)[0]
                    port = 443
                include_tls13 = bool(release.supported_versions) and (
                    rng.random() < release.tls13_fraction_at(month)
                )
                hello = release.build_hello(rng=rng, include_tls13=include_tls13)
                result = server.respond(hello)
                if release.tolerates_unoffered_suite and result.client_aborts:
                    result = HandshakeResult(
                        client_hello=result.client_hello,
                        server_hello=result.server_hello,
                        reason=result.reason,
                        client_aborts=False,
                    )
                day = month + _dt.timedelta(days=rng.randrange(days_in_month))
                self.monitor.observe(
                    day=day,
                    hello=hello,
                    result=result,
                    weight=1.0,
                    client_family=release.family,
                    client_version=release.version,
                    client_category=release.category,
                    client_in_database=release.in_database,
                    exact_day=True,
                    server_profile=server.name,
                    server_port=port,
                )
