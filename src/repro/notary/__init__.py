"""Passive measurement substrate: the Notary monitor, store and generator."""

from repro.notary.events import ConnectionRecord, FingerprintFields
from repro.notary.generator import TrafficGenerator
from repro.notary.monitor import FINGERPRINT_FIELDS_SINCE, PassiveMonitor
from repro.notary.query import (
    ESTABLISHED,
    Advertises,
    Established,
    IndexedPredicate,
    NegotiatedAead,
    NegotiatedKex,
    NegotiatedMode,
    NegotiatedVersion,
)
from repro.notary.store import NotaryStore, month_of, month_range

__all__ = [
    "ConnectionRecord",
    "FingerprintFields",
    "TrafficGenerator",
    "PassiveMonitor",
    "FINGERPRINT_FIELDS_SINCE",
    "NotaryStore",
    "month_of",
    "month_range",
    "ESTABLISHED",
    "Advertises",
    "Established",
    "IndexedPredicate",
    "NegotiatedAead",
    "NegotiatedKex",
    "NegotiatedMode",
    "NegotiatedVersion",
]
