"""Passive measurement substrate: the Notary monitor, store and generator."""

from repro.notary.events import ConnectionRecord, FingerprintFields
from repro.notary.generator import TrafficGenerator
from repro.notary.monitor import FINGERPRINT_FIELDS_SINCE, PassiveMonitor
from repro.notary.query import (
    ESTABLISHED,
    Advertises,
    All,
    AnyOf,
    Established,
    IndexedPredicate,
    NegotiatedAead,
    NegotiatedKex,
    NegotiatedMode,
    NegotiatedVersion,
    Not,
    PositionOf,
)
from repro.notary.store import NotaryStore, month_of, month_range

__all__ = [
    "ConnectionRecord",
    "FingerprintFields",
    "TrafficGenerator",
    "PassiveMonitor",
    "FINGERPRINT_FIELDS_SINCE",
    "NotaryStore",
    "month_of",
    "month_range",
    "ESTABLISHED",
    "Advertises",
    "All",
    "AnyOf",
    "Not",
    "Established",
    "IndexedPredicate",
    "NegotiatedAead",
    "NegotiatedKex",
    "NegotiatedMode",
    "NegotiatedVersion",
    "PositionOf",
]
