"""Indexable predicates over connection records.

The figure series all ask the same handful of questions — "negotiated
version == X", "advertises tag Y" — millions of times across months.
These predicate objects behave exactly like the lambdas they replace
(they are callables taking a record), but additionally expose an
``index_key`` that :class:`~repro.notary.store.NotaryStore` recognizes:
aggregate queries with an indexable predicate are answered from the
store's per-month weight counters in O(1) instead of scanning every
record.  Any plain callable still works and takes the scan path, so
nothing in the analysis layer is forced through the index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.notary.events import ConnectionRecord
from repro.tls.ciphers import KexFamily


@dataclass(frozen=True)
class IndexedPredicate:
    """Base for predicates the store can answer from its index.

    ``index_key`` is a ``(dimension, value)`` pair; subclasses define
    the dimension and the record-level fallback behaviour.
    """

    value: object

    dimension = ""

    @property
    def index_key(self) -> tuple[str, object]:
        return (self.dimension, self.value)

    def __call__(self, record: ConnectionRecord) -> bool:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class NegotiatedVersion(IndexedPredicate):
    """Negotiated protocol version by name (``"TLSv12"``...)."""

    value: str
    dimension = "version"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_version == self.value


@dataclass(frozen=True)
class NegotiatedMode(IndexedPredicate):
    """Negotiated suite mode class (``"AEAD"`` / ``"CBC"`` / ``"RC4"``)."""

    value: str
    dimension = "mode"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_mode_class == self.value


@dataclass(frozen=True)
class NegotiatedKex(IndexedPredicate):
    """Negotiated key-exchange family."""

    value: KexFamily
    dimension = "kex"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_kex == self.value


@dataclass(frozen=True)
class NegotiatedAead(IndexedPredicate):
    """Negotiated AEAD algorithm (``"AES128-GCM"``...)."""

    value: str
    dimension = "aead"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_aead_algorithm == self.value


@dataclass(frozen=True)
class Advertises(IndexedPredicate):
    """Client advertises a suite-class tag (``"rc4"``, ``"aead"``...)."""

    value: str
    dimension = "advert"

    def __call__(self, record: ConnectionRecord) -> bool:
        return self.value in record.advertised


@dataclass(frozen=True)
class Established(IndexedPredicate):
    """The connection produced a Server Hello.

    Doubles as the standard ``within=`` denominator restriction of the
    "negotiated" figures; the store keeps an established-only counter
    set so indexable predicates stay O(1) under this restriction.
    """

    value: bool = True
    dimension = "established"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.established == self.value


#: The shared denominator marker used by the figures.
ESTABLISHED = Established()


def simplify(predicate):
    """Simplify a predicate if it knows how, else return it unchanged."""
    method = getattr(predicate, "simplify", None)
    return method() if method is not None else predicate


@dataclass(frozen=True)
class CompositePredicate:
    """Base for predicate combinators.

    Composites are plain callables, so they always work on the scan
    path, and they are shape-evaluable by construction (children are
    only ever called on one record at a time), so the store's shape
    tier answers them in O(shapes) for packed months.  They are *not*
    index-evaluable in general: combining the index's per-key counters
    arithmetically (``total - matched``, sums across keys) would break
    the float-identity guarantee, because IEEE addition is not
    associative.  The only index use allowed is :meth:`simplify`
    unwrapping a composite to a single ``IndexedPredicate`` that
    matches exactly the same records.
    """

    predicates: tuple

    def __init__(self, *predicates) -> None:
        object.__setattr__(self, "predicates", tuple(predicates))

    def simplify(self):
        """An equivalent predicate, unwrapped where provably identical."""
        return self


class All(CompositePredicate):
    """Logical AND of child predicates; ``All()`` matches everything."""

    def __call__(self, record: ConnectionRecord) -> bool:
        return all(p(record) for p in self.predicates)

    def simplify(self):
        if len(self.predicates) == 1:
            return simplify(self.predicates[0])
        return self


class AnyOf(CompositePredicate):
    """Logical OR of child predicates; ``AnyOf()`` matches nothing."""

    def __call__(self, record: ConnectionRecord) -> bool:
        return any(p(record) for p in self.predicates)

    def simplify(self):
        if len(self.predicates) == 1:
            return simplify(self.predicates[0])
        return self


class Not(CompositePredicate):
    """Logical negation of one child predicate."""

    def __init__(self, predicate) -> None:
        super().__init__(predicate)

    @property
    def predicate(self):
        return self.predicates[0]

    def __call__(self, record: ConnectionRecord) -> bool:
        return not self.predicates[0](record)

    def simplify(self):
        inner = simplify(self.predicates[0])
        if isinstance(inner, Not):
            return simplify(inner.predicates[0])
        if isinstance(inner, Established):
            # established is boolean-valued, so the complement is itself
            # an indexed key: the counter for the opposite value was
            # accumulated over exactly the complement rows in row order.
            return Established(not inner.value)
        return self
