"""Indexable predicates over connection records.

The figure series all ask the same handful of questions — "negotiated
version == X", "advertises tag Y" — millions of times across months.
These predicate objects behave exactly like the lambdas they replace
(they are callables taking a record), but additionally expose an
``index_key`` that :class:`~repro.notary.store.NotaryStore` recognizes:
aggregate queries with an indexable predicate are answered from the
store's per-month weight counters in O(1) instead of scanning every
record.  Any plain callable still works and takes the scan path, so
nothing in the analysis layer is forced through the index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.notary.events import ConnectionRecord
from repro.tls.ciphers import KexFamily


@dataclass(frozen=True)
class IndexedPredicate:
    """Base for predicates the store can answer from its index.

    ``index_key`` is a ``(dimension, value)`` pair; subclasses define
    the dimension and the record-level fallback behaviour.
    """

    value: object

    dimension = ""

    @property
    def index_key(self) -> tuple[str, object]:
        return (self.dimension, self.value)

    def __call__(self, record: ConnectionRecord) -> bool:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class NegotiatedVersion(IndexedPredicate):
    """Negotiated protocol version by name (``"TLSv12"``...)."""

    value: str
    dimension = "version"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_version == self.value


@dataclass(frozen=True)
class NegotiatedMode(IndexedPredicate):
    """Negotiated suite mode class (``"AEAD"`` / ``"CBC"`` / ``"RC4"``)."""

    value: str
    dimension = "mode"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_mode_class == self.value


@dataclass(frozen=True)
class NegotiatedKex(IndexedPredicate):
    """Negotiated key-exchange family."""

    value: KexFamily
    dimension = "kex"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_kex == self.value


@dataclass(frozen=True)
class NegotiatedAead(IndexedPredicate):
    """Negotiated AEAD algorithm (``"AES128-GCM"``...)."""

    value: str
    dimension = "aead"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_aead_algorithm == self.value


@dataclass(frozen=True)
class Advertises(IndexedPredicate):
    """Client advertises a suite-class tag (``"rc4"``, ``"aead"``...)."""

    value: str
    dimension = "advert"

    def __call__(self, record: ConnectionRecord) -> bool:
        return self.value in record.advertised


@dataclass(frozen=True)
class Established(IndexedPredicate):
    """The connection produced a Server Hello.

    Doubles as the standard ``within=`` denominator restriction of the
    "negotiated" figures; the store keeps an established-only counter
    set so indexable predicates stay O(1) under this restriction.
    """

    value: bool = True
    dimension = "established"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.established == self.value


#: The shared denominator marker used by the figures.
ESTABLISHED = Established()
