"""Indexable predicates over connection records.

The figure series all ask the same handful of questions — "negotiated
version == X", "advertises tag Y" — millions of times across months.
These predicate objects behave exactly like the lambdas they replace
(they are callables taking a record), but additionally expose an
``index_key`` that :class:`~repro.notary.store.NotaryStore` recognizes:
aggregate queries with an indexable predicate are answered from the
store's per-month weight counters in O(1) instead of scanning every
record.  Any plain callable still works and takes the scan path, so
nothing in the analysis layer is forced through the index.

Predicates additionally declare a ``vector_field`` — the single shape
field their verdict depends on.  The vectorized tier
(:mod:`repro.notary.vector`) uses it to compile a predicate into a
numpy boolean mask over the packed shape matrix: the predicate is
called once per *distinct canonical value* of that field (on a stub
record carrying only the field), and the per-value verdicts broadcast
to shapes by integer gather.  ``All``/``AnyOf``/``Not`` compile
structurally (AND/OR/NOT of child masks).  A predicate without a
``vector_field`` — any plain lambda — simply isn't vector-compilable
and falls through to the shape tier, same contract as ``index_key``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.notary.events import ConnectionRecord
from repro.tls.ciphers import KexFamily


@dataclass(frozen=True)
class IndexedPredicate:
    """Base for predicates the store can answer from its index.

    ``index_key`` is a ``(dimension, value)`` pair; subclasses define
    the dimension and the record-level fallback behaviour.
    """

    value: object

    dimension = ""
    # The one shape field this predicate's verdict is a function of
    # (possibly via a derived property of it, e.g. the suite lookups
    # read ``negotiated_suite``).  The vector tier evaluates the
    # predicate per distinct value of this field; None opts out.
    # Deliberately *not* annotated: an annotation would turn this class
    # attribute into a dataclass field and change every subclass's
    # __init__/__eq__.
    vector_field = None

    @property
    def index_key(self) -> tuple[str, object]:
        return (self.dimension, self.value)

    def __call__(self, record: ConnectionRecord) -> bool:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class NegotiatedVersion(IndexedPredicate):
    """Negotiated protocol version by name (``"TLSv12"``...)."""

    value: str
    dimension = "version"
    vector_field = "negotiated_version"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_version == self.value


@dataclass(frozen=True)
class NegotiatedMode(IndexedPredicate):
    """Negotiated suite mode class (``"AEAD"`` / ``"CBC"`` / ``"RC4"``)."""

    value: str
    dimension = "mode"
    vector_field = "negotiated_suite"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_mode_class == self.value


@dataclass(frozen=True)
class NegotiatedKex(IndexedPredicate):
    """Negotiated key-exchange family."""

    value: KexFamily
    dimension = "kex"
    vector_field = "negotiated_suite"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_kex == self.value


@dataclass(frozen=True)
class NegotiatedAead(IndexedPredicate):
    """Negotiated AEAD algorithm (``"AES128-GCM"``...)."""

    value: str
    dimension = "aead"
    vector_field = "negotiated_suite"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.negotiated_aead_algorithm == self.value


@dataclass(frozen=True)
class Advertises(IndexedPredicate):
    """Client advertises a suite-class tag (``"rc4"``, ``"aead"``...)."""

    value: str
    dimension = "advert"
    vector_field = "advertised"

    def __call__(self, record: ConnectionRecord) -> bool:
        return self.value in record.advertised


@dataclass(frozen=True)
class Established(IndexedPredicate):
    """The connection produced a Server Hello.

    Doubles as the standard ``within=`` denominator restriction of the
    "negotiated" figures; the store keeps an established-only counter
    set so indexable predicates stay O(1) under this restriction.
    """

    value: bool = True
    dimension = "established"
    vector_field = "established"

    def __call__(self, record: ConnectionRecord) -> bool:
        return record.established == self.value


#: The shared denominator marker used by the figures.
ESTABLISHED = Established()


def simplify(predicate):
    """Simplify a predicate if it knows how, else return it unchanged."""
    method = getattr(predicate, "simplify", None)
    return method() if method is not None else predicate


@dataclass(frozen=True)
class CompositePredicate:
    """Base for predicate combinators.

    Composites are plain callables, so they always work on the scan
    path, and they are shape-evaluable by construction (children are
    only ever called on one record at a time), so the store's shape
    tier answers them in O(shapes) for packed months.  They are *not*
    index-evaluable in general: combining the index's per-key counters
    arithmetically (``total - matched``, sums across keys) would break
    the float-identity guarantee, because IEEE addition is not
    associative.  The only index use allowed is :meth:`simplify`
    unwrapping a composite to a single ``IndexedPredicate`` that
    matches exactly the same records.
    """

    predicates: tuple

    def __init__(self, *predicates) -> None:
        object.__setattr__(self, "predicates", tuple(predicates))

    def simplify(self):
        """An equivalent predicate, unwrapped where provably identical."""
        return self


class All(CompositePredicate):
    """Logical AND of child predicates; ``All()`` matches everything."""

    def __call__(self, record: ConnectionRecord) -> bool:
        return all(p(record) for p in self.predicates)

    def simplify(self):
        if len(self.predicates) == 1:
            return simplify(self.predicates[0])
        return self


class AnyOf(CompositePredicate):
    """Logical OR of child predicates; ``AnyOf()`` matches nothing."""

    def __call__(self, record: ConnectionRecord) -> bool:
        return any(p(record) for p in self.predicates)

    def simplify(self):
        if len(self.predicates) == 1:
            return simplify(self.predicates[0])
        return self


class Not(CompositePredicate):
    """Logical negation of one child predicate."""

    def __init__(self, predicate) -> None:
        super().__init__(predicate)

    @property
    def predicate(self):
        return self.predicates[0]

    def __call__(self, record: ConnectionRecord) -> bool:
        return not self.predicates[0](record)

    def simplify(self):
        inner = simplify(self.predicates[0])
        if isinstance(inner, Not):
            return simplify(inner.predicates[0])
        if isinstance(inner, Established):
            # established is boolean-valued, so the complement is itself
            # an indexed key: the counter for the opposite value was
            # accumulated over exactly the complement rows in row order.
            return Established(not inner.value)
        return self


@dataclass(frozen=True)
class PositionOf:
    """``weighted_mean`` value function: relative position of the first
    suite of a class tag in the Client Hello (``record.positions``).

    Behaves exactly like the lambda it replaces
    (``lambda r: r.positions.get(tag)`` — Figure 5), but being a frozen
    dataclass it is value-hashable (so per-dataset compilations memoize
    across fresh instances) and declares a ``vector_field`` (so the
    vector tier serves it without any per-shape Python calls).
    """

    tag: str

    vector_field = "positions"

    def __call__(self, record: ConnectionRecord) -> float | None:
        return record.positions.get(self.tag)
