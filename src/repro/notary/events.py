"""Connection records: what the passive monitor stores per observation.

A :class:`ConnectionRecord` is the Notary's unit of data — the paper's
dataset "focuses on connections instead of servers" (§3.1).  Records
carry a ``weight`` so the same type works for Monte-Carlo samples
(weight 1) and expectation-mode aggregates (fractional weights).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from repro.tls.ciphers import REGISTRY, KexFamily
from repro.tls.extensions import ExtensionType
from repro.tls.grease import strip_grease
from repro.tls.handshake import HandshakeResult
from repro.tls.messages import ClientHello

# Advertisement tags computed once per hello (Figures 3, 6, 7, 10).
_TAG_PREDICATES = {
    "rc4": lambda s: s.is_rc4,
    "cbc": lambda s: s.is_cbc,
    "aead": lambda s: s.is_aead,
    "des": lambda s: s.is_des,
    "3des": lambda s: s.is_3des,
    "export": lambda s: s.is_export,
    "anon": lambda s: s.is_anonymous,
    "null": lambda s: s.is_null_encryption,
    "null_null": lambda s: s.is_null_null,
    "fs": lambda s: s.forward_secret,
    "aes128gcm": lambda s: s.aead_algorithm == "AES128-GCM",
    "aes256gcm": lambda s: s.aead_algorithm == "AES256-GCM",
    "chacha20": lambda s: s.aead_algorithm == "ChaCha20-Poly1305",
    "aesccm": lambda s: s.is_aead and s.aead_algorithm and "CCM" in s.aead_algorithm,
}

# Relative-position classes for Figure 5.
_POSITION_CLASSES = ("aead", "cbc", "rc4", "des", "3des")


import functools


@functools.lru_cache(maxsize=8192)
def advertisement_tags(hello: ClientHello) -> frozenset[str]:
    """Tags for every suite class the client advertises.

    Cached: expectation mode re-observes the same hello object for every
    (month, server) pair.
    """
    suites = [s for s in hello.known_suites() if not s.scsv]
    tags = {
        tag
        for tag, predicate in _TAG_PREDICATES.items()
        if any(predicate(s) for s in suites)
    }
    return frozenset(tags)


@functools.lru_cache(maxsize=8192)
def relative_positions(hello: ClientHello) -> dict[str, float]:
    """Relative position (0 head, 1 tail) of the first suite per class.

    Cached like :func:`advertisement_tags`; callers must not mutate the
    returned dict.
    """
    positions: dict[str, float] = {}
    for tag in _POSITION_CLASSES:
        predicate = _TAG_PREDICATES[tag]
        rel = hello.relative_position(lambda s, p=predicate: p(s) and not s.scsv)
        if rel is not None:
            positions[tag] = rel
    return positions


@functools.lru_cache(maxsize=8192)
def _suite_count(hello: ClientHello) -> int:
    return len([s for s in hello.known_suites() if not s.scsv])


@dataclass(frozen=True)
class FingerprintFields:
    """The four Client Hello fields the paper fingerprints (§4),
    GREASE-stripped, wire order preserved."""

    cipher_suites: tuple[int, ...]
    extensions: tuple[int, ...]
    curves: tuple[int, ...]
    ec_point_formats: tuple[int, ...]

    @classmethod
    def from_hello(cls, hello: ClientHello) -> "FingerprintFields":
        return _fingerprint_fields(hello)


@functools.lru_cache(maxsize=8192)
def _fingerprint_fields(hello: ClientHello) -> "FingerprintFields":
    return FingerprintFields(
        cipher_suites=strip_grease(hello.cipher_suites),
        extensions=strip_grease(hello.extension_types()),
        curves=strip_grease(hello.supported_groups),
        ec_point_formats=tuple(hello.ec_point_formats),
    )


@dataclass(frozen=True)
class ConnectionRecord:
    """One observed (or expectation-weighted) TLS connection."""

    month: _dt.date
    weight: float
    # Client-side ground truth (used for labeling validation; the
    # fingerprint matcher does not read these).
    client_family: str
    client_version: str
    client_category: str
    client_in_database: bool
    # Client Hello observables.
    fingerprint: FingerprintFields | None
    advertised: frozenset[str]
    positions: dict[str, float]
    suite_count: int
    offered_tls13: bool
    offered_tls13_versions: tuple[int, ...]
    # Server response observables.
    established: bool
    negotiated_version: str | None
    negotiated_wire: int | None
    negotiated_suite: int | None
    negotiated_curve: int | None
    heartbeat_negotiated: bool
    server_chose_unoffered: bool
    # Exact observation day (Monte-Carlo mode); month granularity
    # otherwise.  §4.1's duration statistics read this field.
    day: _dt.date | None = None
    # Extension types offered by the client and echoed by the server —
    # the raw material for the §9 outlook analyses (RIE deployment,
    # Encrypt-then-MAC uptake).  GREASE stripped.
    client_extensions: tuple[int, ...] = ()
    server_extensions: tuple[int, ...] = ()
    # Destination metadata: the archetype the connection terminated at
    # and the TCP port — the paper repeatedly identifies endpoints this
    # way ("the port number suggests Nagios servers", §5.5; "Splunk
    # servers on port 9997", §6.3.1).
    server_profile: str = ""
    server_port: int | None = None

    # ---- derived helpers --------------------------------------------------

    def advertises(self, tag: str) -> bool:
        return tag in self.advertised

    def offers_extension(self, ext_type: int) -> bool:
        return int(ext_type) in self.client_extensions

    def negotiated_extension(self, ext_type: int) -> bool:
        """Extension offered by the client and acknowledged by the server."""
        return (
            int(ext_type) in self.client_extensions
            and int(ext_type) in self.server_extensions
        )

    @property
    def suite(self):
        if self.negotiated_suite is None:
            return None
        return REGISTRY.get(self.negotiated_suite)

    @property
    def negotiated_mode_class(self) -> str | None:
        suite = self.suite
        return suite.mode_class if suite else None

    @property
    def negotiated_kex(self) -> KexFamily | None:
        suite = self.suite
        return suite.kex_family if suite else None

    @property
    def negotiated_aead_algorithm(self) -> str | None:
        suite = self.suite
        return suite.aead_algorithm if suite else None

    @property
    def forward_secret(self) -> bool:
        suite = self.suite
        return bool(suite and suite.forward_secret)


def make_record(
    month: _dt.date,
    weight: float,
    hello: ClientHello,
    result: HandshakeResult,
    client_family: str,
    client_version: str,
    client_category: str,
    client_in_database: bool,
    record_fingerprint: bool,
    day: _dt.date | None = None,
    server_profile: str = "",
    server_port: int | None = None,
) -> ConnectionRecord:
    """Build a record from a handshake observation.

    ``record_fingerprint`` models the Notary's Feb-2014 cutover: the
    fields needed for fingerprinting only exist from then on (§4.0.1).
    """
    version = result.version
    offered = strip_grease(hello.supported_versions)
    negotiated_suite = (
        result.server_hello.cipher_suite if result.server_hello is not None else None
    )
    return ConnectionRecord(
        month=month,
        weight=weight,
        client_family=client_family,
        client_version=client_version,
        client_category=client_category,
        client_in_database=client_in_database,
        fingerprint=FingerprintFields.from_hello(hello) if record_fingerprint else None,
        advertised=advertisement_tags(hello),
        positions=relative_positions(hello),
        suite_count=_suite_count(hello),
        offered_tls13=bool(offered),
        offered_tls13_versions=offered,
        established=result.established,
        negotiated_version=version.name if version else None,
        negotiated_wire=result.version_wire,
        negotiated_suite=negotiated_suite,
        negotiated_curve=result.curve,
        heartbeat_negotiated=result.heartbeat_negotiated,
        server_chose_unoffered=bool(
            result.server_hello is not None
            and negotiated_suite not in strip_grease(hello.cipher_suites)
        ),
        day=day,
        client_extensions=strip_grease(hello.extension_types()),
        server_extensions=(
            strip_grease(result.server_hello.extension_types())
            if result.server_hello is not None
            else ()
        ),
        server_profile=server_profile,
        server_port=server_port,
    )
