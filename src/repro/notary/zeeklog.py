"""Zeek/Bro-style ``ssl.log`` export and import.

The ICSI SSL Notary collects its data through Bro (now Zeek) policy
scripts (§3.1); the natural interchange format for its records is the
Zeek TSV log.  This module renders a :class:`NotaryStore` as a Zeek
ssl.log (tab-separated, ``#fields``/``#types`` headers, ``-`` for
unset fields) and parses such logs back — enough fidelity for the
analysis layer to run on exported data.

Only wire-observable fields are exported: ground-truth client labels
stay out of the log, exactly as a real monitor would be limited.
"""

from __future__ import annotations

import datetime as _dt
from pathlib import Path
from typing import Iterable, TextIO

from repro.notary.events import ConnectionRecord
from repro.notary.store import NotaryStore
from repro.tls.ciphers import REGISTRY

_FIELDS = (
    ("ts", "time"),
    ("weight", "double"),
    ("version", "string"),
    ("cipher", "string"),
    ("curve", "string"),
    ("established", "bool"),
    ("client_ciphers", "vector[count]"),
    ("client_extensions", "vector[count]"),
    ("client_curves", "vector[count]"),
    ("point_formats", "vector[count]"),
    ("heartbeat", "bool"),
    ("tls13_offered", "vector[count]"),
)

_UNSET = "-"
_SEP = "\t"
_VECTOR_SEP = ","


def _render_vector(values) -> str:
    if not values:
        return _UNSET
    return _VECTOR_SEP.join(str(v) for v in values)


def _parse_vector(cell: str) -> tuple[int, ...]:
    if cell == _UNSET or cell == "":
        return ()
    return tuple(int(v) for v in cell.split(_VECTOR_SEP))


def _render_record(record: ConnectionRecord) -> str:
    day = record.day if record.day is not None else record.month
    timestamp = _dt.datetime(day.year, day.month, day.day).timestamp()
    suite = record.suite
    cipher = suite.name if suite is not None else _UNSET
    fingerprint = record.fingerprint
    cells = [
        f"{timestamp:.6f}",
        f"{record.weight:.9g}",
        record.negotiated_version or _UNSET,
        cipher,
        str(record.negotiated_curve) if record.negotiated_curve is not None else _UNSET,
        "T" if record.established else "F",
        _render_vector(fingerprint.cipher_suites if fingerprint else ()),
        _render_vector(fingerprint.extensions if fingerprint else ()),
        _render_vector(fingerprint.curves if fingerprint else ()),
        _render_vector(fingerprint.ec_point_formats if fingerprint else ()),
        "T" if record.heartbeat_negotiated else "F",
        _render_vector(record.offered_tls13_versions),
    ]
    return _SEP.join(cells)


def write_ssl_log(store: NotaryStore, destination: TextIO) -> int:
    """Write a Zeek-style ssl.log; returns the number of rows."""
    destination.write("#separator \\x09\n")
    destination.write("#set_separator\t,\n")
    destination.write("#empty_field\t(empty)\n")
    destination.write("#unset_field\t-\n")
    destination.write("#path\tssl\n")
    destination.write("#fields\t" + _SEP.join(name for name, _ in _FIELDS) + "\n")
    destination.write("#types\t" + _SEP.join(kind for _, kind in _FIELDS) + "\n")
    rows = 0
    for record in store.records():
        destination.write(_render_record(record) + "\n")
        rows += 1
    destination.write("#close\n")
    return rows


def export_ssl_log(store: NotaryStore, path: str | Path) -> int:
    """Write the store to a file; returns the number of rows."""
    with open(path, "w", encoding="utf-8") as handle:
        return write_ssl_log(store, handle)


def _record_from_cells(cells: dict[str, str]) -> ConnectionRecord:
    from repro.notary.events import FingerprintFields
    from repro.notary.store import month_of

    day = _dt.datetime.fromtimestamp(float(cells["ts"])).date()
    suites = _parse_vector(cells["client_ciphers"])
    fingerprint = None
    if cells["client_ciphers"] != _UNSET or cells["client_extensions"] != _UNSET:
        fingerprint = FingerprintFields(
            cipher_suites=suites,
            extensions=_parse_vector(cells["client_extensions"]),
            curves=_parse_vector(cells["client_curves"]),
            ec_point_formats=_parse_vector(cells["point_formats"]),
        )
    cipher_code = None
    if cells["cipher"] != _UNSET:
        from repro.tls.ciphers import suite_by_name

        cipher_code = suite_by_name(cells["cipher"]).code
    # Advertisement tags recomputed from the logged suite list.
    from repro.notary import events as _events

    tags = frozenset(
        tag
        for tag, predicate in _events._TAG_PREDICATES.items()
        if any(
            predicate(REGISTRY[code])
            for code in suites
            if code in REGISTRY and not REGISTRY[code].scsv
        )
    )
    offered_tls13 = _parse_vector(cells["tls13_offered"])
    return ConnectionRecord(
        month=month_of(day),
        weight=float(cells["weight"]),
        client_family="(from log)",
        client_version="",
        client_category="",
        client_in_database=False,
        fingerprint=fingerprint,
        advertised=tags,
        positions={},
        suite_count=len(suites),
        offered_tls13=bool(offered_tls13),
        offered_tls13_versions=offered_tls13,
        established=cells["established"] == "T",
        negotiated_version=cells["version"] if cells["version"] != _UNSET else None,
        negotiated_wire=None,
        negotiated_suite=cipher_code,
        negotiated_curve=int(cells["curve"]) if cells["curve"] != _UNSET else None,
        heartbeat_negotiated=cells["heartbeat"] == "T",
        server_chose_unoffered=False,
        day=day,
    )


def read_ssl_log(source: TextIO) -> NotaryStore:
    """Parse a Zeek-style ssl.log back into a :class:`NotaryStore`."""
    store = NotaryStore()
    field_names: list[str] | None = None
    for line in source:
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("#fields\t"):
                field_names = line.split(_SEP)[1:]
            continue
        if field_names is None:
            raise ValueError("ssl.log has data before its #fields header")
        parts = line.split(_SEP)
        if len(parts) != len(field_names):
            raise ValueError(f"malformed ssl.log row: {line!r}")
        cells = dict(zip(field_names, parts))
        store.add(_record_from_cells(cells))
    return store


def import_ssl_log(path: str | Path) -> NotaryStore:
    """Read an exported log file back into a store."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_ssl_log(handle)
