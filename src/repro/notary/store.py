"""The Notary store: monthly-aggregated connection records.

The analysis layer reads everything through this store.  All percentage
series are weight-based: monthly fractions of connection weight matching
a predicate, mirroring the paper's "percent monthly connections" axes.

Aggregation runs four tiers, fastest first:

* **Indexed** — each month lazily builds an aggregate index: weight
  sums keyed by (dimension, value) for the standard figure dimensions
  (negotiated version/mode/kex/AEAD, advertised suite-class tags,
  establishment), over all records and over established records.
  Queries whose predicate is a :class:`repro.notary.query.IndexedPredicate`
  (or a composite that :meth:`simplify`-unwraps to one) are answered
  from these counters in O(1).
* **Vectorized** — predicates and value functions that declare a
  ``vector_field`` (every built-in predicate, ``All``/``AnyOf``/``Not``
  composites of them, ``PositionOf``) compile to numpy boolean masks
  over the payload's int-coded shape matrix — one Python call per
  *distinct field value*, not per shape — and fold with sequential
  ``cumsum`` kernels that replay the scan's row-order additions
  exactly (:mod:`repro.notary.vector`).  Skipped silently when numpy
  is absent or the callable doesn't compile; ``use_vector = False``
  disables just this tier (the bench's shape-tier comparator).
* **Shape-compiled** — packed months are dictionary-encoded: every row
  is a (weight, shape-index) pair into a table of distinct shapes, so
  an arbitrary predicate or ``weighted_mean`` value function has only
  O(shapes) distinct answers per month.  The store evaluates it once
  per *guarded* template record (memoized per dataset, so a whole
  multi-month series pays the per-shape evaluation once), then folds
  the verdicts with the month's weight columns — no record objects are
  ever materialized on this path.  Predicates that read per-row state
  (``month``, ``weight``) raise on the guarded templates and drop to a
  scan instead of answering wrongly; months carrying day columns skip
  this tier for the same reason.
* **Scan** — anything else falls back to scanning the month's record
  objects, exactly as before.  ``use_index = False`` forces this path
  everywhere, disabling *both* fast tiers (used by equivalence tests).

All three tiers are float-identical, not merely approximately equal:
counter accumulation and every shape-tier fold walk rows in record
order (IEEE addition is non-associative, so grouped per-shape sums
would drift in the last bits), and the differential suites assert
exact equality.  See DESIGN.md §6f for the full discipline.

The store can also hold months in packed columnar form
(:class:`repro.engine.partition.PackedDataset` — the parallel runner's
partitions and the persistent dataset cache attach these).  Packed
months *stay* packed: a scan or ``records()`` call materializes record
objects into a small transient LRU side-cache
(``materialize_cache_months``) while the columnar form remains
attached, so a one-off scan no longer permanently degrades the month.
Only mutation (``add`` / ``add_batch`` / ``extend``) materializes a
month for good, invalidating its index, shape view, and the all-months
record cache so lazy months are indistinguishable from eager ones —
with one exception: ``add_batch`` of a *new*, day-less month into a
store that already holds packed months takes the **incremental ingest**
path instead.  The batch is packed into a store-local ingest dataset
(:meth:`~repro.engine.partition.PackedDataset.append_month`, O(new
month)), sealed months are never re-packed, and the new month is
immediately servable by every fast tier.
"""

from __future__ import annotations

import datetime as _dt
import os
from collections import OrderedDict, defaultdict
from collections.abc import Callable, Iterable
from itertools import compress
from operator import mul

from repro.engine.perf import PERF
from repro.notary import vector as _vector
from repro.notary.events import ConnectionRecord
from repro.notary.query import Established, IndexedPredicate
from repro.obs import emit_event, get_logger

_log = get_logger("repro.notary.store")


def month_of(day: _dt.date) -> _dt.date:
    """Normalize a date to the first of its month."""
    return day.replace(day=1)


def month_range(start: _dt.date, end: _dt.date) -> list[_dt.date]:
    """All month-firsts from ``start``'s month to ``end``'s month inclusive."""
    months = []
    cursor = month_of(start)
    last = month_of(end)
    while cursor <= last:
        months.append(cursor)
        cursor = (cursor.replace(day=28) + _dt.timedelta(days=4)).replace(day=1)
    return months


def _scan_fold(weights: list) -> float:
    """Row-order weight fold for the scan oracle.

    With numpy present the collected weights fold through ``cumsum`` —
    one compiled pass instead of a per-row interpreted add.  The two
    paths are equal bit-for-bit, not merely close: the Python fold
    starts at ``0.0`` (and ``0.0 + w == w`` exactly) and adds
    left-to-right, and ``cumsum`` performs the same float64 additions
    on the same operands in the same order — the differential test
    asserts ``==``, never approximate equality.
    """
    if not weights:
        return 0.0
    if _vector.available():
        import numpy as _np

        return float(_np.cumsum(_np.asarray(weights, dtype=_np.float64))[-1])
    total = 0.0
    for weight in weights:
        total += weight
    return total


def _record_keys(record: ConnectionRecord) -> list[tuple[str, object]]:
    """The (dimension, value) index keys one record contributes to."""
    keys = [
        ("version", record.negotiated_version),
        ("mode", record.negotiated_mode_class),
        ("kex", record.negotiated_kex),
        ("aead", record.negotiated_aead_algorithm),
        ("established", record.established),
    ]
    keys.extend(("advert", tag) for tag in record.advertised)
    return keys


class _MonthIndex:
    """Precomputed weight sums for one month's records."""

    __slots__ = ("total", "established", "weights", "established_weights")

    def __init__(self) -> None:
        self.total = 0.0
        self.established = 0.0
        self.weights: dict[tuple[str, object], float] = {}
        self.established_weights: dict[tuple[str, object], float] = {}

    @classmethod
    def from_records(cls, records: list[ConnectionRecord]) -> "_MonthIndex":
        index = cls()
        weights: dict = defaultdict(float)
        established_weights: dict = defaultdict(float)
        for record in records:
            weight = record.weight
            index.total += weight
            keys = _record_keys(record)
            for key in keys:
                weights[key] += weight
            if record.established:
                index.established += weight
                for key in keys:
                    established_weights[key] += weight
        index.weights = dict(weights)
        index.established_weights = dict(established_weights)
        return index

    @classmethod
    def from_columns(cls, dataset, month: _dt.date) -> "_MonthIndex":
        """Build from a packed month without materializing records.

        Per-shape key lists are derived once from the dataset's template
        records and cached on the dataset; accumulation then walks the
        weight column in row order, so the result is float-identical to
        :meth:`from_records` over the materialized month.

        With numpy present the per-key counters are built by vectorized
        folds instead of a per-row Python loop (see
        :meth:`_from_columns_vector`); the two paths are equal — not
        merely close — because every vectorized fold replays the same
        row-order addition sequence, and the differential test asserts
        it.
        """
        shape_keys = getattr(dataset, "_index_shape_keys", None)
        if shape_keys is None:
            shape_keys = [
                (_record_keys(template), template.established)
                for template in dataset.template_records()
            ]
            dataset._index_shape_keys = shape_keys
        columns = dataset.columns(month)
        if columns is not None and _vector.available():
            index = cls._from_columns_vector(shape_keys, columns)
            if index is not None:
                return index
        index = cls()
        weights: dict = defaultdict(float)
        established_weights: dict = defaultdict(float)
        if columns is not None:
            weight_column, idx_column = columns
            for i, idx in enumerate(idx_column):
                weight = weight_column[i]
                index.total += weight
                keys, established = shape_keys[idx]
                for key in keys:
                    weights[key] += weight
                if established:
                    index.established += weight
                    for key in keys:
                        established_weights[key] += weight
        index.weights = dict(weights)
        index.established_weights = dict(established_weights)
        return index

    @classmethod
    def _from_columns_vector(cls, shape_keys, columns) -> "_MonthIndex | None":
        """Numpy counter construction; None when numpy import fails.

        Float-identity argument: the row loop keeps one accumulator per
        (dimension, value) key, added to once per matching row in row
        order starting from ``0.0`` (and ``0.0 + w == w`` exactly).  A
        ``cumsum`` over the weights *compressed by that key's row mask*
        performs the same additions on the same operands in the same
        order — so each counter, the month total, and the established
        fold come out bit-for-bit equal to :meth:`from_records`.
        """
        import numpy as _np

        index = cls()
        weight_column, idx_column = columns
        rows = len(weight_column)
        if rows == 0:
            return index
        w = _np.frombuffer(weight_column, dtype=_np.float64)
        idx = _np.frombuffer(
            idx_column, dtype=_np.dtype(f"u{idx_column.itemsize}")
        )

        def fold(values) -> float:
            return float(_np.cumsum(values)[-1]) if len(values) else 0.0

        index.total = fold(w)
        n_shapes = len(shape_keys)
        est_shape = _np.zeros(n_shapes, dtype=bool)
        key_shapes: dict = {}
        for shape_idx, (keys, established) in enumerate(shape_keys):
            if established:
                est_shape[shape_idx] = True
            for key in keys:
                mask = key_shapes.get(key)
                if mask is None:
                    mask = key_shapes[key] = _np.zeros(n_shapes, dtype=bool)
                mask[shape_idx] = True
        est_rows = est_shape[idx]
        index.established = fold(w[est_rows])
        weights: dict = {}
        established_weights: dict = {}
        for key, shape_mask in key_shapes.items():
            key_rows = shape_mask[idx]
            if not key_rows.any():
                continue
            weights[key] = fold(w[key_rows])
            both = key_rows & est_rows
            if both.any():
                established_weights[key] = fold(w[both])
        index.weights = weights
        index.established_weights = established_weights
        return index

    # ---- cache (de)serialization -------------------------------------------

    def to_payload(self) -> dict:
        return {
            "total": self.total,
            "established": self.established,
            "weights": list(self.weights.items()),
            "established_weights": list(self.established_weights.items()),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "_MonthIndex":
        index = cls()
        index.total = payload["total"]
        index.established = payload["established"]
        index.weights = dict(payload["weights"])
        index.established_weights = dict(payload["established_weights"])
        return index


class _ShapeView:
    """Compiled per-month state for the shape tier.

    Holds the month's weight/shape-index columns, the pack-time
    per-shape group-by, and the dataset's guarded templates.  Every
    fold below walks rows in record order; the only shortcuts taken
    are the ones that are *provably* the same left fold the scan path
    performs (empty match, single matching shape, all rows matching).
    The folds run through ``itertools.compress`` + ``map`` + ``sum``,
    which perform the identical addition sequence at C speed.

    Views are immutable, so they are shared *per dataset* (every store
    attaching the same packed dataset reuses them) — see
    :meth:`NotaryStore._shape_view`.
    """

    #: Fold-result memo cap; the memos are cleared wholesale past this.
    CACHE_LIMIT = 1024

    __slots__ = (
        "dataset",
        "templates",
        "weights",
        "idxs",
        "sum_of",
        "total",
        "established",
        "est_shapes",
        "_weight_cache",
        "_pair_cache",
        "_mean_cache",
    )

    def __init__(self, dataset, month: _dt.date) -> None:
        summary = dataset.shape_summary(month)
        self.dataset = dataset
        self.templates = dataset.guarded_templates()
        self.weights, self.idxs = dataset.columns(month)
        #: shape index -> total weight of its rows (row-order fold).
        self.sum_of = dict(zip(summary["order"], summary["sums"]))
        self.total = summary["total"]
        self.established = summary["established"]
        self.est_shapes = frozenset(
            idx for idx in self.sum_of if self.templates[idx].established
        )
        # Columns are immutable, so fold results are cacheable by match
        # set: equivalent predicates (even distinct callables) pay the
        # O(rows) fold once per view.  Cached values were computed by
        # the exact fold, so hits preserve float identity trivially.
        self._weight_cache: dict = {}
        self._pair_cache: dict = {}
        self._mean_cache: dict = {}

    def weight_of(self, matches: frozenset) -> float:
        """Total weight of rows whose shape is in ``matches`` (exact)."""
        cached = self._weight_cache.get(matches)
        if cached is not None:
            return cached
        present = matches & self.sum_of.keys()
        if not present:
            result = 0.0
        elif len(present) == 1:
            # One shape's pack-time sum is a fold over exactly its rows
            # in row order — the same fold the scan would perform.
            result = self.sum_of[next(iter(present))]
        elif len(present) == len(self.sum_of):
            result = self.total
        else:
            flags = self._flags(present)
            result = sum(compress(self.weights, map(flags.__getitem__, self.idxs)))
        if len(self._weight_cache) >= self.CACHE_LIMIT:
            self._weight_cache.clear()
        self._weight_cache[matches] = result
        return result

    def _flags(self, shape_indices) -> bytearray:
        """Per-shape membership flags (row selectors via ``shape_idx``)."""
        flags = bytearray(len(self.templates))
        for idx in shape_indices:
            flags[idx] = 1
        return flags

    def restrict_weights(
        self, within_matches: frozenset, matches: frozenset
    ) -> tuple[float, float]:
        """(denominator, numerator) folds under a ``within`` restriction.

        Mirrors the scan exactly: the denominator folds the restricted
        rows in row order, the numerator folds the restricted-and-
        matching rows in row order, both from zero.
        """
        key = (within_matches, matches)
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        wflags = self._flags(within_matches)
        bflags = self._flags(within_matches & matches)
        total = sum(compress(self.weights, map(wflags.__getitem__, self.idxs)))
        matched = sum(compress(self.weights, map(bflags.__getitem__, self.idxs)))
        if len(self._pair_cache) >= self.CACHE_LIMIT:
            self._pair_cache.clear()
        self._pair_cache[key] = (total, matched)
        return total, matched

    def mean_of(self, values: list) -> float | None:
        """Row-order weighted mean of per-shape values (exact).

        The scan keeps two accumulators over the non-None rows —
        ``acc += w * v`` and ``total += w`` — and each sees its own
        addition sequence, so folding them in two passes (same row
        order, same per-row products) is float-identical.
        """
        try:
            key = tuple(values)
            cached = self._mean_cache.get(key, _MISSING)
        except TypeError:  # unhashable per-shape values: fold uncached
            key = None
            cached = _MISSING
        if cached is not _MISSING:
            return cached
        vflags = bytes(0 if v is None else 1 for v in values)

        def selected(source):
            return compress(source, map(vflags.__getitem__, self.idxs))

        acc = sum(map(mul, selected(self.weights), selected(map(values.__getitem__, self.idxs))))
        total = sum(selected(self.weights))
        result = None if total <= 0 else acc / total
        if key is not None:
            if len(self._mean_cache) >= self.CACHE_LIMIT:
                self._mean_cache.clear()
            self._mean_cache[key] = result
        return result


def build_index_payloads(payload: dict) -> dict[int, dict]:
    """Serializable aggregate indexes for one packed payload's months.

    The parallel runner calls this per adopted chunk, while the chunk's
    columns are still ordinary resident arrays — so by the time the
    dataset lives behind an mmap, every month's index already exists
    and neither the cache save nor a later ``stats`` query has to page
    column bytes back in.  Accumulation is row-order
    (:meth:`_MonthIndex.from_columns`), so the result is float-identical
    no matter which payload (chunk-local or merged) it was built from.
    """
    from repro.engine.partition import PackedDataset

    dataset = PackedDataset(payload)
    return {
        month.toordinal(): _MonthIndex.from_columns(dataset, month).to_payload()
        for month in dataset.months()
    }


def _index_key(predicate) -> tuple[str, object] | None:
    if isinstance(predicate, IndexedPredicate):
        return predicate.index_key
    simplify = getattr(predicate, "simplify", None)
    if simplify is not None:
        simplified = simplify()
        if isinstance(simplified, IndexedPredicate):
            return simplified.index_key
    return None


def _is_established_marker(within) -> bool:
    return isinstance(within, Established) and within.value is True


#: Cache-miss sentinel (``None`` is a legitimate cached result).
_MISSING = object()


class NotaryStore:
    """Holds connection records grouped by month."""

    #: How many packed months keep a transiently materialized record
    #: list around (LRU).  Read paths materialize into this side cache
    #: and leave the packed columnar form attached.
    materialize_cache_months = 4

    def __init__(self) -> None:
        self._by_month: dict[_dt.date, list[ConnectionRecord]] = defaultdict(list)
        #: Months still held in packed columnar form: month -> dataset.
        self._packed: dict[_dt.date, object] = {}
        self._indexes: dict[_dt.date, _MonthIndex] = {}
        self._shape_views: dict[_dt.date, _ShapeView] = {}
        self._vector_views: dict[_dt.date, object] = {}
        #: Store-local dataset accumulating incrementally ingested
        #: months (see :meth:`add_batch`); lazily created.
        self._ingest = None
        #: Transient record lists for packed months (read path only).
        self._mat_cache: OrderedDict[_dt.date, list[ConnectionRecord]] = OrderedDict()
        #: Months evicted from the transient LRU (churn diagnostics).
        self._mat_evicted: set[_dt.date] = set()
        self._all_records: list[ConnectionRecord] | None = None
        #: Escape hatch: force every aggregate through the scan path.
        #: Disables the index, vector, and shape tiers.
        self.use_index = True
        #: Narrower escape hatch: keep index + shape tiers but skip the
        #: vectorized tier (differential tests and the bench's
        #: shape-tier comparator arm).
        self.use_vector = True

    # ---- mutation ----------------------------------------------------------

    def add(self, record: ConnectionRecord) -> None:
        self._materialize(record.month)
        self._by_month[record.month].append(record)
        self._invalidate(record.month)

    def add_batch(self, month: _dt.date, records: list[ConnectionRecord]) -> None:
        """Append a whole month partition in one call (engine merge path).

        A *new*, day-less month arriving at a store that already holds
        packed months is **ingested incrementally**: packed straight
        into a store-local ingest dataset (O(new month) — the shared
        shape table, matrix, and this month's summary extend in place)
        and attached packed, so its index, shape view, and vector view
        build lazily like any other packed month and no sealed month is
        ever re-packed.  Every other case — a colliding month, a store
        with no packed months, day-carrying records — keeps the
        materializing behaviour.
        """
        month = month_of(month)
        if (
            records
            and (self._packed or self._ingest is not None)
            and month not in self._packed
            and month not in self._by_month
            and all(r.day is None for r in records)
        ):
            self._ingest_month(month, records)
            return
        self._materialize(month)
        self._by_month[month].extend(records)
        self._invalidate(month)

    def _ingest_month(self, month: _dt.date, records: list[ConnectionRecord]) -> None:
        from repro.engine.partition import PackedDataset

        dataset = self._ingest
        if dataset is None:
            dataset = self._ingest = PackedDataset.empty()
        dataset.append_month(month, records)
        self._packed[month] = dataset
        # The append invalidated the dataset's compiled memos; drop this
        # store's per-month handles into them so they rebuild in sync.
        self._vector_views = {}
        self._all_records = None

    def extend(self, records: Iterable[ConnectionRecord]) -> None:
        grouped: dict[_dt.date, list[ConnectionRecord]] = defaultdict(list)
        for record in records:
            grouped[record.month].append(record)
        for month, batch in grouped.items():
            self.add_batch(month, batch)

    def attach_packed(self, dataset, *, idempotent: bool = False) -> None:
        """Adopt a :class:`~repro.engine.partition.PackedDataset` lazily.

        Months the store does not hold yet stay packed until a scan needs
        them; months that collide with existing data are materialized
        and appended immediately.

        With ``idempotent=True`` colliding months are *skipped* instead
        of appended: the engine's recovery paths (checkpoint resume,
        chunk retries) may legitimately present a month the store
        already holds, and re-attaching must not double its records.
        """
        for month in dataset.months():
            if month in self._by_month or month in self._packed:
                if idempotent:
                    continue
                self.add_batch(month, dataset.materialize(month))
            else:
                self._packed[month] = dataset
        self._all_records = None

    def install_index_payloads(self, payloads: dict) -> None:
        """Adopt persisted aggregate indexes for still-packed months."""
        for month_ord, data in payloads.items():
            month = _dt.date.fromordinal(month_ord)
            if month in self._packed and month not in self._indexes:
                self._indexes[month] = _MonthIndex.from_payload(data)

    def index_payloads(self) -> dict[int, dict]:
        """Serializable aggregate indexes for every month (cache path)."""
        out = {}
        for month in self.months():
            index = self._index(month)
            if index is not None:
                out[month.toordinal()] = index.to_payload()
        return out

    def _materialize(self, month: _dt.date) -> None:
        """Permanently convert a packed month into mutable record lists.

        Only the mutation path calls this.  Read paths go through
        :meth:`_month_records`, which materializes into the transient
        LRU cache and keeps the packed dataset attached.
        """
        dataset = self._packed.pop(month, None)
        if dataset is not None:
            cached = self._mat_cache.pop(month, None)
            self._by_month[month].extend(
                dataset.materialize(month) if cached is None else cached
            )
            self._shape_views.pop(month, None)
            self._vector_views.pop(month, None)
            self._all_records = None

    def _invalidate(self, month: _dt.date) -> None:
        self._indexes.pop(month, None)
        self._shape_views.pop(month, None)
        self._vector_views.pop(month, None)
        self._mat_cache.pop(month, None)
        self._all_records = None

    # ---- access ------------------------------------------------------------

    def months(self) -> list[_dt.date]:
        if self._packed:
            return sorted(set(self._by_month) | set(self._packed))
        return sorted(self._by_month)

    def _materialize_limit(self) -> int:
        """The transient-LRU bound: ``REPRO_MATERIALIZE_LRU`` when set
        (and a valid integer), else :attr:`materialize_cache_months`."""
        raw = os.environ.get("REPRO_MATERIALIZE_LRU", "").strip()
        if raw:
            try:
                return max(1, int(raw))
            except ValueError:
                _log.warning(
                    "ignoring non-integer REPRO_MATERIALIZE_LRU=%r", raw
                )
        return max(1, int(self.materialize_cache_months))

    def _month_records(self, month: _dt.date) -> list[ConnectionRecord]:
        """The month's record list; packed months materialize transiently."""
        if month in self._by_month:
            return self._by_month[month]
        dataset = self._packed.get(month)
        if dataset is None:
            return []
        records = self._mat_cache.get(month)
        if records is None:
            records = dataset.materialize(month)
            if month in self._mat_evicted:
                # The working set is cycling through the LRU: every
                # revisit pays a full re-materialization.
                self._mat_evicted.discard(month)
                _log.info(
                    "materialize LRU churn: month %s re-materialized after "
                    "eviction (bound %d; raise REPRO_MATERIALIZE_LRU to fit "
                    "the working set)",
                    month.isoformat(),
                    self._materialize_limit(),
                )
            self._mat_cache[month] = records
            limit = self._materialize_limit()
            while len(self._mat_cache) > limit:
                evicted, _records = self._mat_cache.popitem(last=False)
                self._mat_evicted.add(evicted)
        else:
            self._mat_cache.move_to_end(month)
        return records

    def records(self, month: _dt.date | None = None) -> list[ConnectionRecord]:
        if month is not None:
            return list(self._month_records(month_of(month)))
        if self._all_records is None:
            self._all_records = [
                r for m in self.months() for r in self._month_records(m)
            ]
        return list(self._all_records)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_month.values()) + sum(
            dataset.count(month) for month, dataset in self._packed.items()
        )

    def packed_merge(self):
        """A streaming merge over the store's packed payloads, or None.

        Available when every month is held in packed form (no raw
        record lists): the per-dataset payloads merge columnar-ly
        (:class:`repro.engine.partition.PackedMerge`) — byte-identical
        to ``pack_records(self.records())`` without materializing a
        single record object, and consumable month by month, which is
        what keeps the cache-save path O(one month) resident at any
        ``--scale``.
        """
        if any(self._by_month.values()) or not self._packed:
            return None
        from repro.engine.partition import PackedMerge

        seen: dict[int, object] = {}
        payloads = []
        for dataset in self._packed.values():
            if id(dataset) not in seen:
                seen[id(dataset)] = dataset
                payloads.append(dataset._payload)
        covered = [
            month_ord
            for payload in payloads
            for month_ord in payload["months"]
        ]
        if len(covered) != len(set(covered)) or set(covered) != {
            month.toordinal() for month in self._packed
        }:
            # A dataset month the store skipped at attach time (the
            # idempotent-resume collision case) would smuggle duplicate
            # rows into the merge; let the record path handle it.
            return None
        return PackedMerge(payloads)

    def packed_spill(self):
        """The ``BlobSpill`` backing this store's packed months, or None.

        Available when the store holds exactly one packed dataset whose
        payload was produced by :meth:`repro.engine.cache.BlobSpill.finish_payload`
        and every month the store serves came from it — the cache-save
        path then seals the blob by splicing the spill's region file
        instead of reading the mapped columns back.
        """
        if any(self._by_month.values()) or not self._packed:
            return None
        datasets = {id(d): d for d in self._packed.values()}
        if len(datasets) != 1:
            return None
        payload = next(iter(datasets.values()))._payload
        spill = payload.get("_spill")
        if spill is None:
            return None
        if set(payload["months"]) != {m.toordinal() for m in self._packed}:
            return None
        return spill

    def packed_payload(self) -> dict | None:
        """One merged in-memory payload covering the whole store, or
        None (the materializing wrapper over :meth:`packed_merge`)."""
        merge = self.packed_merge()
        if merge is None:
            return None
        from repro.engine.partition import build_shape_matrix, PARTITION_FORMAT

        months = {month_ord: columns for month_ord, columns in merge.months()}
        return {
            "format": PARTITION_FORMAT,
            "shapes": merge.shapes,
            "months": months,
            "shape_matrix": build_shape_matrix(merge.shapes),
        }

    # ---- shape-level access (figure fast paths) ----------------------------

    def shape_templates(
        self, month: _dt.date, *, order: str = "first"
    ) -> list[ConnectionRecord] | None:
        """Guarded template records of the shapes present in ``month``.

        Returns ``None`` whenever the shape tier cannot serve the month
        (not packed, day columns present, or ``use_index`` is off);
        callers then fall back to ``records(month)``.  ``order="first"``
        yields shapes by first appearance in record order,
        ``order="last"`` by last appearance — the order a last-wins
        dict fold over the records would visit its surviving writers.
        """
        month = month_of(month)
        if not self.use_index:
            return None
        dataset = self._packed.get(month)
        if dataset is None or dataset.has_days(month):
            return None
        summary = dataset.shape_summary(month)
        templates = dataset.guarded_templates()
        picks = summary["last"] if order == "last" else summary["order"]
        return [templates[idx] for idx in picks]

    def packed_columns(self, month: _dt.date):
        """``(weights, shape_idx, guarded templates)`` for a packed month.

        Same availability rules as :meth:`shape_templates`; lets figure
        code run exact row-order folds without materializing records.
        """
        month = month_of(month)
        if not self.use_index:
            return None
        dataset = self._packed.get(month)
        if dataset is None or dataset.has_days(month):
            return None
        weights, idxs = dataset.columns(month)
        return weights, idxs, dataset.guarded_templates()

    # ---- aggregation -------------------------------------------------------

    def _index(self, month: _dt.date) -> _MonthIndex | None:
        if not self.use_index:
            return None
        index = self._indexes.get(month)
        if index is not None:
            return index
        dataset = self._packed.get(month)
        if dataset is not None:
            index = _MonthIndex.from_columns(dataset, month)
        else:
            records = self._by_month.get(month)
            if not records:
                return None
            index = _MonthIndex.from_records(records)
        self._indexes[month] = index
        return index

    def _shape_view(self, month: _dt.date) -> _ShapeView | None:
        if not self.use_index:
            return None
        view = self._shape_views.get(month)
        if view is not None:
            return view
        dataset = self._packed.get(month)
        if dataset is None or dataset.has_days(month):
            # Day columns vary per row; the shared guarded templates pin
            # ``day = None``, so day-carrying months must scan.
            return None
        # Views are immutable, so they live on the dataset and are
        # shared by every store that attaches it (same pattern as the
        # index shape keys); a fresh store pays only a dict lookup.
        shared = getattr(dataset, "_shape_view_cache", None)
        if shared is None:
            shared = dataset._shape_view_cache = {}
        view = shared.get(month)
        if view is None:
            view = shared[month] = _ShapeView(dataset, month)
            emit_event(
                "shape_view_build",
                month=month.isoformat(),
                shapes=len(view.sum_of),
                rows=len(view.weights),
            )
        self._shape_views[month] = view
        return view

    def _vector_view(self, month: _dt.date):
        """The month's vector view, or None when the tier can't serve it
        (numpy absent, month not packed / day-carrying, or either escape
        hatch flipped).  ``None`` always means "try the shape tier"."""
        if not (self.use_index and self.use_vector and _vector.available()):
            return None
        view = self._vector_views.get(month)
        if view is not None:
            return view
        dataset = self._packed.get(month)
        if dataset is None or dataset.has_days(month):
            return None
        view = _vector.view_for(dataset, month)
        if view is not None:
            self._vector_views[month] = view
        return view

    def _vector_note(self, month: _dt.date, reason: str) -> None:
        """Record a vector compile miss (the shape tier serves instead)."""
        if self.use_index and month in self._packed:
            PERF.vector_compile_misses += 1
            emit_event(
                "vector_path",
                month=month.isoformat(),
                outcome="compile_miss",
                reason=reason,
            )

    def _scan_note(self, month: _dt.date, reason: str) -> None:
        """Record a scan the fast tiers could have served but did not."""
        if self.use_index and month in self._packed:
            PERF.scan_fallbacks += 1
            emit_event("scan_fallback", month=month.isoformat(), reason=reason)

    def total_weight(self, month: _dt.date) -> float:
        month = month_of(month)
        index = self._index(month)
        if index is not None:
            return index.total
        return _scan_fold([r.weight for r in self._month_records(month)])

    def weight_where(
        self, month: _dt.date, predicate: Callable[[ConnectionRecord], bool]
    ) -> float:
        month = month_of(month)
        if self.use_index:
            key = _index_key(predicate)
            if key is not None:
                index = self._index(month)
                if index is not None:
                    return index.weights.get(key, 0.0)
            vview = self._vector_view(month)
            if vview is not None:
                mask = vview.matrix.compile_mask(predicate)
                if mask is not None:
                    PERF.vector_path_hits += 1
                    return vview.weight_of(mask)
                self._vector_note(month, "predicate")
            view = self._shape_view(month)
            if view is not None:
                matches = view.dataset.compile_predicate(predicate)
                if matches is not None:
                    PERF.shape_path_hits += 1
                    return view.weight_of(matches)
                self._scan_note(month, "predicate")
        return _scan_fold(
            [r.weight for r in self._month_records(month) if predicate(r)]
        )

    def fraction(
        self,
        month: _dt.date,
        predicate: Callable[[ConnectionRecord], bool],
        within: Callable[[ConnectionRecord], bool] | None = None,
    ) -> float:
        """Weighted fraction of records matching ``predicate``.

        ``within`` restricts the denominator (e.g. established
        connections only); default denominator is all records of the
        month.  Returns 0.0 for empty months.
        """
        month = month_of(month)
        if self.use_index:
            key = _index_key(predicate)
            if key is not None:
                index = self._index(month)
                if index is not None:
                    if within is None:
                        if index.total <= 0:
                            return 0.0
                        return index.weights.get(key, 0.0) / index.total
                    if _is_established_marker(within):
                        if index.established <= 0:
                            return 0.0
                        return (
                            index.established_weights.get(key, 0.0)
                            / index.established
                        )
            result = self._vector_fraction(month, predicate, within)
            if result is not None:
                PERF.vector_path_hits += 1
                return result
            result = self._shape_fraction(month, predicate, within)
            if result is not None:
                PERF.shape_path_hits += 1
                return result
        records = self._month_records(month)
        if within is not None:
            records = [r for r in records if within(r)]
        total = _scan_fold([r.weight for r in records])
        if total <= 0:
            return 0.0
        return _scan_fold([r.weight for r in records if predicate(r)]) / total

    def _vector_fraction(self, month, predicate, within) -> float | None:
        """``fraction`` via the vector tier; None means "next tier".

        Mirrors :meth:`_shape_fraction` case by case; every fold is the
        same row-order addition sequence the shape tier (and the scan)
        performs, so a hit here returns the identical bytes.
        """
        vview = self._vector_view(month)
        if vview is None:
            return None
        mask = vview.matrix.compile_mask(predicate)
        if mask is None:
            self._vector_note(month, "predicate")
            return None
        if within is None:
            if vview.total <= 0:
                return 0.0
            return vview.weight_of(mask) / vview.total
        if _is_established_marker(within):
            if vview.established <= 0:
                return 0.0
            est_mask = vview.matrix.compile_mask(Established())
            return vview.weight_of(mask & est_mask) / vview.established
        within_mask = vview.matrix.compile_mask(within)
        if within_mask is None:
            self._vector_note(month, "within")
            return None
        total, matched = vview.restrict_weights(within_mask, mask)
        if total <= 0:
            return 0.0
        return matched / total

    def _shape_fraction(self, month, predicate, within) -> float | None:
        """``fraction`` via the shape tier; None means "scan instead"."""
        view = self._shape_view(month)
        if view is None:
            return None
        matches = view.dataset.compile_predicate(predicate)
        if matches is None:
            self._scan_note(month, "predicate")
            return None
        if within is None:
            if view.total <= 0:
                return 0.0
            return view.weight_of(matches) / view.total
        if _is_established_marker(within):
            if view.established <= 0:
                return 0.0
            return view.weight_of(matches & view.est_shapes) / view.established
        within_matches = view.dataset.compile_predicate(within)
        if within_matches is None:
            self._scan_note(month, "within")
            return None
        total, matched = view.restrict_weights(within_matches, matches)
        if total <= 0:
            return 0.0
        return matched / total

    def monthly_fraction(
        self,
        predicate: Callable[[ConnectionRecord], bool],
        within: Callable[[ConnectionRecord], bool] | None = None,
        months: list[_dt.date] | None = None,
    ) -> list[tuple[_dt.date, float]]:
        """The ``fraction`` series over every month in the store.

        ``months`` lets batch callers (the figure evaluator) compute
        the sorted month list once instead of re-sorting per series.
        """
        if months is None:
            months = self.months()
        return [(m, self.fraction(m, predicate, within)) for m in months]

    def weighted_mean(
        self,
        month: _dt.date,
        value: Callable[[ConnectionRecord], float | None],
    ) -> float | None:
        """Weight-averaged value over records where ``value`` is not None."""
        month = month_of(month)
        if self.use_index:
            vview = self._vector_view(month)
            if vview is not None:
                compiled = vview.matrix.compile_values(value)
                if compiled is not None:
                    PERF.vector_path_hits += 1
                    return vview.mean_of(*compiled)
                self._vector_note(month, "value")
            view = self._shape_view(month)
            if view is not None:
                values = view.dataset.compile_values(value)
                if values is not None:
                    PERF.shape_path_hits += 1
                    return view.mean_of(values)
                self._scan_note(month, "value")
        # Each term ``weight * v`` is a single float64 multiply whether
        # it happens in the old scalar loop or in this comprehension, so
        # folding the products preserves the scalar path's bytes.
        pairs = [
            (record.weight, v)
            for record in self._month_records(month)
            if (v := value(record)) is not None
        ]
        total = _scan_fold([w for w, _ in pairs])
        if total <= 0:
            return None
        return _scan_fold([w * v for w, v in pairs]) / total
