"""The Notary store: monthly-aggregated connection records.

The analysis layer reads everything through this store.  All percentage
series are weight-based: monthly fractions of connection weight matching
a predicate, mirroring the paper's "percent monthly connections" axes.
"""

from __future__ import annotations

import datetime as _dt
from collections import defaultdict
from collections.abc import Callable, Iterable

from repro.notary.events import ConnectionRecord


def month_of(day: _dt.date) -> _dt.date:
    """Normalize a date to the first of its month."""
    return day.replace(day=1)


def month_range(start: _dt.date, end: _dt.date) -> list[_dt.date]:
    """All month-firsts from ``start``'s month to ``end``'s month inclusive."""
    months = []
    cursor = month_of(start)
    last = month_of(end)
    while cursor <= last:
        months.append(cursor)
        cursor = (cursor.replace(day=28) + _dt.timedelta(days=4)).replace(day=1)
    return months


class NotaryStore:
    """Holds connection records grouped by month."""

    def __init__(self) -> None:
        self._by_month: dict[_dt.date, list[ConnectionRecord]] = defaultdict(list)

    def add(self, record: ConnectionRecord) -> None:
        self._by_month[record.month].append(record)

    def extend(self, records: Iterable[ConnectionRecord]) -> None:
        for record in records:
            self.add(record)

    def months(self) -> list[_dt.date]:
        return sorted(self._by_month)

    def records(self, month: _dt.date | None = None) -> list[ConnectionRecord]:
        if month is not None:
            return list(self._by_month.get(month_of(month), ()))
        return [r for m in self.months() for r in self._by_month[m]]

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_month.values())

    # ---- aggregation -------------------------------------------------------

    def total_weight(self, month: _dt.date) -> float:
        return sum(r.weight for r in self._by_month.get(month_of(month), ()))

    def weight_where(
        self, month: _dt.date, predicate: Callable[[ConnectionRecord], bool]
    ) -> float:
        return sum(
            r.weight for r in self._by_month.get(month_of(month), ()) if predicate(r)
        )

    def fraction(
        self,
        month: _dt.date,
        predicate: Callable[[ConnectionRecord], bool],
        within: Callable[[ConnectionRecord], bool] | None = None,
    ) -> float:
        """Weighted fraction of records matching ``predicate``.

        ``within`` restricts the denominator (e.g. established
        connections only); default denominator is all records of the
        month.  Returns 0.0 for empty months.
        """
        records = self._by_month.get(month_of(month), ())
        if within is not None:
            records = [r for r in records if within(r)]
        total = sum(r.weight for r in records)
        if total <= 0:
            return 0.0
        return sum(r.weight for r in records if predicate(r)) / total

    def monthly_fraction(
        self,
        predicate: Callable[[ConnectionRecord], bool],
        within: Callable[[ConnectionRecord], bool] | None = None,
    ) -> list[tuple[_dt.date, float]]:
        """The ``fraction`` series over every month in the store."""
        return [(m, self.fraction(m, predicate, within)) for m in self.months()]

    def weighted_mean(
        self,
        month: _dt.date,
        value: Callable[[ConnectionRecord], float | None],
    ) -> float | None:
        """Weight-averaged value over records where ``value`` is not None."""
        total = 0.0
        acc = 0.0
        for record in self._by_month.get(month_of(month), ()):
            v = value(record)
            if v is None:
                continue
            acc += record.weight * v
            total += record.weight
        if total <= 0:
            return None
        return acc / total
