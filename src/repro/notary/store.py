"""The Notary store: monthly-aggregated connection records.

The analysis layer reads everything through this store.  All percentage
series are weight-based: monthly fractions of connection weight matching
a predicate, mirroring the paper's "percent monthly connections" axes.

Aggregation runs two paths:

* **Indexed** — each month lazily builds an aggregate index: weight
  sums keyed by (dimension, value) for the standard figure dimensions
  (negotiated version/mode/kex/AEAD, advertised suite-class tags,
  establishment), over all records and over established records.
  Queries whose predicate is a :class:`repro.notary.query.IndexedPredicate`
  are answered from these counters in O(1).  Counter accumulation
  preserves record order, so indexed results are float-identical to a
  scan — not merely approximately equal (tests assert exact equality).
* **Scan** — any plain callable predicate falls back to scanning the
  month's records, exactly as before.  ``use_index = False`` forces
  this path everywhere (used by equivalence tests).

The store can also hold months in packed columnar form
(:class:`repro.engine.partition.PackedDataset` — the parallel runner's
partitions and the persistent dataset cache attach these).  Packed
months answer indexed aggregates straight from their weight columns
(or from counters persisted alongside the blob) and only materialize
record objects when a scan or ``records()`` call actually needs them.

Mutation (``add`` / ``add_batch`` / ``extend``) materializes the
touched month first and invalidates its index and the all-months
record cache, so lazy months are indistinguishable from eager ones.
"""

from __future__ import annotations

import datetime as _dt
from collections import defaultdict
from collections.abc import Callable, Iterable

from repro.notary.events import ConnectionRecord
from repro.notary.query import Established, IndexedPredicate


def month_of(day: _dt.date) -> _dt.date:
    """Normalize a date to the first of its month."""
    return day.replace(day=1)


def month_range(start: _dt.date, end: _dt.date) -> list[_dt.date]:
    """All month-firsts from ``start``'s month to ``end``'s month inclusive."""
    months = []
    cursor = month_of(start)
    last = month_of(end)
    while cursor <= last:
        months.append(cursor)
        cursor = (cursor.replace(day=28) + _dt.timedelta(days=4)).replace(day=1)
    return months


def _record_keys(record: ConnectionRecord) -> list[tuple[str, object]]:
    """The (dimension, value) index keys one record contributes to."""
    keys = [
        ("version", record.negotiated_version),
        ("mode", record.negotiated_mode_class),
        ("kex", record.negotiated_kex),
        ("aead", record.negotiated_aead_algorithm),
        ("established", record.established),
    ]
    keys.extend(("advert", tag) for tag in record.advertised)
    return keys


class _MonthIndex:
    """Precomputed weight sums for one month's records."""

    __slots__ = ("total", "established", "weights", "established_weights")

    def __init__(self) -> None:
        self.total = 0.0
        self.established = 0.0
        self.weights: dict[tuple[str, object], float] = {}
        self.established_weights: dict[tuple[str, object], float] = {}

    @classmethod
    def from_records(cls, records: list[ConnectionRecord]) -> "_MonthIndex":
        index = cls()
        weights: dict = defaultdict(float)
        established_weights: dict = defaultdict(float)
        for record in records:
            weight = record.weight
            index.total += weight
            keys = _record_keys(record)
            for key in keys:
                weights[key] += weight
            if record.established:
                index.established += weight
                for key in keys:
                    established_weights[key] += weight
        index.weights = dict(weights)
        index.established_weights = dict(established_weights)
        return index

    @classmethod
    def from_columns(cls, dataset, month: _dt.date) -> "_MonthIndex":
        """Build from a packed month without materializing records.

        Per-shape key lists are derived once from the dataset's template
        records and cached on the dataset; accumulation then walks the
        weight column in row order, so the result is float-identical to
        :meth:`from_records` over the materialized month.
        """
        shape_keys = getattr(dataset, "_index_shape_keys", None)
        if shape_keys is None:
            shape_keys = [
                (_record_keys(template), template.established)
                for template in dataset.template_records()
            ]
            dataset._index_shape_keys = shape_keys
        index = cls()
        weights: dict = defaultdict(float)
        established_weights: dict = defaultdict(float)
        columns = dataset.columns(month)
        if columns is not None:
            weight_column, idx_column = columns
            for i, idx in enumerate(idx_column):
                weight = weight_column[i]
                index.total += weight
                keys, established = shape_keys[idx]
                for key in keys:
                    weights[key] += weight
                if established:
                    index.established += weight
                    for key in keys:
                        established_weights[key] += weight
        index.weights = dict(weights)
        index.established_weights = dict(established_weights)
        return index

    # ---- cache (de)serialization -------------------------------------------

    def to_payload(self) -> dict:
        return {
            "total": self.total,
            "established": self.established,
            "weights": list(self.weights.items()),
            "established_weights": list(self.established_weights.items()),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "_MonthIndex":
        index = cls()
        index.total = payload["total"]
        index.established = payload["established"]
        index.weights = dict(payload["weights"])
        index.established_weights = dict(payload["established_weights"])
        return index


def _index_key(predicate) -> tuple[str, object] | None:
    if isinstance(predicate, IndexedPredicate):
        return predicate.index_key
    return None


def _is_established_marker(within) -> bool:
    return isinstance(within, Established) and within.value is True


class NotaryStore:
    """Holds connection records grouped by month."""

    def __init__(self) -> None:
        self._by_month: dict[_dt.date, list[ConnectionRecord]] = defaultdict(list)
        #: Months still held in packed columnar form: month -> dataset.
        self._packed: dict[_dt.date, object] = {}
        self._indexes: dict[_dt.date, _MonthIndex] = {}
        self._all_records: list[ConnectionRecord] | None = None
        #: Escape hatch: force every aggregate through the scan path.
        self.use_index = True

    # ---- mutation ----------------------------------------------------------

    def add(self, record: ConnectionRecord) -> None:
        self._materialize(record.month)
        self._by_month[record.month].append(record)
        self._invalidate(record.month)

    def add_batch(self, month: _dt.date, records: list[ConnectionRecord]) -> None:
        """Append a whole month partition in one call (engine merge path)."""
        month = month_of(month)
        self._materialize(month)
        self._by_month[month].extend(records)
        self._invalidate(month)

    def extend(self, records: Iterable[ConnectionRecord]) -> None:
        grouped: dict[_dt.date, list[ConnectionRecord]] = defaultdict(list)
        for record in records:
            grouped[record.month].append(record)
        for month, batch in grouped.items():
            self.add_batch(month, batch)

    def attach_packed(self, dataset, *, idempotent: bool = False) -> None:
        """Adopt a :class:`~repro.engine.partition.PackedDataset` lazily.

        Months the store does not hold yet stay packed until a scan needs
        them; months that collide with existing data are materialized
        and appended immediately.

        With ``idempotent=True`` colliding months are *skipped* instead
        of appended: the engine's recovery paths (checkpoint resume,
        chunk retries) may legitimately present a month the store
        already holds, and re-attaching must not double its records.
        """
        for month in dataset.months():
            if month in self._by_month or month in self._packed:
                if idempotent:
                    continue
                self.add_batch(month, dataset.materialize(month))
            else:
                self._packed[month] = dataset
        self._all_records = None

    def install_index_payloads(self, payloads: dict) -> None:
        """Adopt persisted aggregate indexes for still-packed months."""
        for month_ord, data in payloads.items():
            month = _dt.date.fromordinal(month_ord)
            if month in self._packed and month not in self._indexes:
                self._indexes[month] = _MonthIndex.from_payload(data)

    def index_payloads(self) -> dict[int, dict]:
        """Serializable aggregate indexes for every month (cache path)."""
        out = {}
        for month in self.months():
            index = self._index(month)
            if index is not None:
                out[month.toordinal()] = index.to_payload()
        return out

    def _materialize(self, month: _dt.date) -> None:
        dataset = self._packed.pop(month, None)
        if dataset is not None:
            self._by_month[month].extend(dataset.materialize(month))
            self._all_records = None

    def _invalidate(self, month: _dt.date) -> None:
        self._indexes.pop(month, None)
        self._all_records = None

    # ---- access ------------------------------------------------------------

    def months(self) -> list[_dt.date]:
        if self._packed:
            return sorted(set(self._by_month) | set(self._packed))
        return sorted(self._by_month)

    def _month_records(self, month: _dt.date) -> list[ConnectionRecord]:
        """The month's record list, materializing a packed month first."""
        self._materialize(month)
        return self._by_month.get(month, [])

    def records(self, month: _dt.date | None = None) -> list[ConnectionRecord]:
        if month is not None:
            return list(self._month_records(month_of(month)))
        if self._all_records is None:
            for pending in list(self._packed):
                self._materialize(pending)
            self._all_records = [
                r for m in self.months() for r in self._by_month[m]
            ]
        return list(self._all_records)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_month.values()) + sum(
            dataset.count(month) for month, dataset in self._packed.items()
        )

    # ---- aggregation -------------------------------------------------------

    def _index(self, month: _dt.date) -> _MonthIndex | None:
        if not self.use_index:
            return None
        index = self._indexes.get(month)
        if index is not None:
            return index
        dataset = self._packed.get(month)
        if dataset is not None:
            index = _MonthIndex.from_columns(dataset, month)
        else:
            records = self._by_month.get(month)
            if not records:
                return None
            index = _MonthIndex.from_records(records)
        self._indexes[month] = index
        return index

    def total_weight(self, month: _dt.date) -> float:
        month = month_of(month)
        index = self._index(month)
        if index is not None:
            return index.total
        return sum(r.weight for r in self._month_records(month))

    def weight_where(
        self, month: _dt.date, predicate: Callable[[ConnectionRecord], bool]
    ) -> float:
        month = month_of(month)
        index = self._index(month)
        if index is not None:
            key = _index_key(predicate)
            if key is not None:
                return index.weights.get(key, 0.0)
        return sum(r.weight for r in self._month_records(month) if predicate(r))

    def fraction(
        self,
        month: _dt.date,
        predicate: Callable[[ConnectionRecord], bool],
        within: Callable[[ConnectionRecord], bool] | None = None,
    ) -> float:
        """Weighted fraction of records matching ``predicate``.

        ``within`` restricts the denominator (e.g. established
        connections only); default denominator is all records of the
        month.  Returns 0.0 for empty months.
        """
        month = month_of(month)
        index = self._index(month)
        if index is not None:
            key = _index_key(predicate)
            if key is not None:
                if within is None:
                    if index.total <= 0:
                        return 0.0
                    return index.weights.get(key, 0.0) / index.total
                if _is_established_marker(within):
                    if index.established <= 0:
                        return 0.0
                    return (
                        index.established_weights.get(key, 0.0) / index.established
                    )
        records = self._month_records(month)
        if within is not None:
            records = [r for r in records if within(r)]
        total = sum(r.weight for r in records)
        if total <= 0:
            return 0.0
        return sum(r.weight for r in records if predicate(r)) / total

    def monthly_fraction(
        self,
        predicate: Callable[[ConnectionRecord], bool],
        within: Callable[[ConnectionRecord], bool] | None = None,
    ) -> list[tuple[_dt.date, float]]:
        """The ``fraction`` series over every month in the store."""
        return [(m, self.fraction(m, predicate, within)) for m in self.months()]

    def weighted_mean(
        self,
        month: _dt.date,
        value: Callable[[ConnectionRecord], float | None],
    ) -> float | None:
        """Weight-averaged value over records where ``value`` is not None."""
        total = 0.0
        acc = 0.0
        for record in self._month_records(month_of(month)):
            v = value(record)
            if v is None:
                continue
            acc += record.weight * v
            total += record.weight
        if total <= 0:
            return None
        return acc / total
