"""Collection-quality artifacts: outages, packet drops, best effort.

§3.1: the Notary rides on operational networks and "must accept
occasional outages, packet drops (e.g., due to CPU overload) and
misconfigurations ... we take what we get but generally cannot
quantify what we miss", yet the paper argues the aggregate remains
representative.  This module makes both halves concrete:

* degradation operators that thin a store the way real artifacts would
  (whole-month outages, uniform packet loss, biased loss against large
  handshakes), and
* a robustness check comparing an analysis on the degraded store
  against the clean one — the representativeness claim, testable.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import replace

from repro.notary.events import ConnectionRecord
from repro.notary.store import NotaryStore, month_of


def apply_uniform_loss(
    store: NotaryStore, loss: float, rng: random.Random
) -> NotaryStore:
    """Drop a uniform fraction of observations (CPU-overload drops).

    Expectation-mode records (fractional weights) are thinned by weight
    scaling with multiplicative jitter; unit-weight samples are dropped
    Bernoulli-style.
    """
    if not 0.0 <= loss < 1.0:
        raise ValueError("loss must be in [0, 1)")
    degraded = NotaryStore()
    for record in store.records():
        if record.weight == 1.0:
            if rng.random() < loss:
                continue
            degraded.add(record)
        else:
            jitter = 1.0 + rng.uniform(-0.1, 0.1)
            kept = record.weight * (1.0 - loss) * jitter
            if kept > 0:
                degraded.add(replace(record, weight=kept))
    return degraded


def apply_outage(store: NotaryStore, month: _dt.date) -> NotaryStore:
    """Remove an entire month — a site outage."""
    target = month_of(month)
    degraded = NotaryStore()
    for record in store.records():
        if record.month == target:
            continue
        degraded.add(record)
    return degraded


def apply_biased_loss(
    store: NotaryStore, loss: float, rng: random.Random, threshold: int = 25
) -> NotaryStore:
    """Drop observations of *large* hellos preferentially.

    Big cipher lists mean bigger handshakes, which are likelier to be
    cut by per-packet sampling — a bias that, unlike uniform loss, can
    distort advertisement statistics.  Exists so tests can demonstrate
    which artifacts the aggregate is and is not robust to.
    """
    if not 0.0 <= loss < 1.0:
        raise ValueError("loss must be in [0, 1)")
    degraded = NotaryStore()
    for record in store.records():
        is_large = record.suite_count >= threshold
        effective = loss if is_large else 0.0
        if record.weight == 1.0:
            if rng.random() < effective:
                continue
            degraded.add(record)
        else:
            kept = record.weight * (1.0 - effective)
            if kept > 0:
                degraded.add(replace(record, weight=kept))
    return degraded


def robustness_gap(
    clean: NotaryStore,
    degraded: NotaryStore,
    predicate,
    within=None,
) -> float:
    """Largest monthly deviation (in fraction points) of a metric.

    The §3.1 representativeness claim quantified: for months present in
    both stores, how far does the degraded store's fraction stray from
    the clean one's?
    """
    months = [m for m in clean.months() if degraded.total_weight(m) > 0]
    if not months:
        raise ValueError("no overlapping months with data")
    return max(
        abs(
            clean.fraction(m, predicate, within)
            - degraded.fraction(m, predicate, within)
        )
        for m in months
    )
